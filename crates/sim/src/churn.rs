//! The churn model of paper §5.1.
//!
//! Node lifetimes follow an exponential distribution
//! `f(x) = λ⁻¹·e^(−x/λ)` with mean lifetime λ (the paper writes the
//! density with rate 1/λ; λ = 60 min or 10 min in Table 2). When a node
//! dies, a replacement joins after an exponentially distributed offline
//! gap, keeping the long-run population stable — the paper's Table 2
//! varies λ to stress the identification mechanisms under frequent churn.

use rand::Rng;

use crate::time::Duration;

/// Samples node lifetimes and offline gaps.
#[derive(Clone, Debug)]
pub struct ChurnProcess {
    mean_lifetime: Duration,
    mean_offline: Duration,
}

impl ChurnProcess {
    /// Churn with the given mean lifetime and mean offline gap.
    #[must_use]
    pub fn new(mean_lifetime: Duration, mean_offline: Duration) -> Self {
        ChurnProcess {
            mean_lifetime,
            mean_offline,
        }
    }

    /// Churn disabled: nodes never die.
    #[must_use]
    pub fn disabled() -> Self {
        ChurnProcess {
            mean_lifetime: Duration(u64::MAX),
            mean_offline: Duration::ZERO,
        }
    }

    /// Is churn active?
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.mean_lifetime.0 != u64::MAX
    }

    /// Mean lifetime λ.
    #[must_use]
    pub fn mean_lifetime(&self) -> Duration {
        self.mean_lifetime
    }

    /// Sample a node lifetime.
    pub fn sample_lifetime<R: Rng + ?Sized>(&self, rng: &mut R) -> Duration {
        if !self.is_enabled() {
            return Duration(u64::MAX);
        }
        sample_exponential(self.mean_lifetime, rng)
    }

    /// Sample how long a replacement waits before joining.
    pub fn sample_offline<R: Rng + ?Sized>(&self, rng: &mut R) -> Duration {
        if self.mean_offline == Duration::ZERO {
            return Duration::ZERO;
        }
        sample_exponential(self.mean_offline, rng)
    }
}

/// Draw from Exp(mean) by inversion sampling.
fn sample_exponential<R: Rng + ?Sized>(mean: Duration, rng: &mut R) -> Duration {
    // u ∈ (0,1]; -ln(u) ~ Exp(1)
    let u: f64 = 1.0 - rng.gen::<f64>();
    let x = -u.ln() * mean.as_secs_f64();
    Duration::from_secs_f64(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mean_matches_parameter() {
        let mut rng = StdRng::seed_from_u64(9);
        let churn = ChurnProcess::new(Duration::from_secs(3600), Duration::ZERO);
        let n = 20_000;
        let total: f64 = (0..n)
            .map(|_| churn.sample_lifetime(&mut rng).as_secs_f64())
            .sum();
        let mean = total / n as f64;
        assert!(
            (mean - 3600.0).abs() < 100.0,
            "empirical mean {mean} too far from 3600"
        );
    }

    #[test]
    fn exponential_memoryless_shape() {
        // P(X > λ) should be ≈ e^{-1} ≈ 0.368
        let mut rng = StdRng::seed_from_u64(10);
        let churn = ChurnProcess::new(Duration::from_secs(600), Duration::ZERO);
        let n = 20_000;
        let over = (0..n)
            .filter(|_| churn.sample_lifetime(&mut rng) > Duration::from_secs(600))
            .count();
        let frac = over as f64 / n as f64;
        assert!((frac - 0.368).abs() < 0.02, "P(X>λ) = {frac}");
    }

    #[test]
    fn disabled_never_dies() {
        let mut rng = StdRng::seed_from_u64(11);
        let churn = ChurnProcess::disabled();
        assert!(!churn.is_enabled());
        assert_eq!(churn.sample_lifetime(&mut rng), Duration(u64::MAX));
        assert_eq!(churn.sample_offline(&mut rng), Duration::ZERO);
    }

    #[test]
    fn offline_gap_sampled() {
        let mut rng = StdRng::seed_from_u64(12);
        let churn = ChurnProcess::new(Duration::from_secs(600), Duration::from_secs(60));
        let g = churn.sample_offline(&mut rng);
        assert!(g > Duration::ZERO);
    }

    #[test]
    fn samples_are_positive_and_varied() {
        let mut rng = StdRng::seed_from_u64(13);
        let churn = ChurnProcess::new(Duration::from_secs(600), Duration::ZERO);
        let a = churn.sample_lifetime(&mut rng);
        let b = churn.sample_lifetime(&mut rng);
        assert_ne!(a, b);
    }
}
