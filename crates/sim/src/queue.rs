//! The time-ordered event queue at the heart of the simulator.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A deterministic priority queue of `(SimTime, E)` events.
///
/// Ties at the same instant pop in insertion order, which keeps
/// simulations reproducible regardless of heap internals.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: SimTime,
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert so earliest time pops first,
        // and lower sequence number wins ties.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics when `at` is in the past — scheduling backwards in time is
    /// always a protocol-logic bug.
    pub fn push(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past ({at:?} < {:?})",
            self.now
        );
        self.heap.push(Entry {
            time: at,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let e = self.heap.pop()?;
        self.now = e.time;
        Some((e.time, e.event))
    }

    /// Peek at the next event time without popping.
    #[must_use]
    pub fn next_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Current simulation time (timestamp of the last popped event).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Discard all pending events (used at simulation shutdown).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), "c");
        q.push(SimTime::from_secs(1), "a");
        q.push(SimTime::from_secs(2), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn clock_advances() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(5), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(5));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(5), ());
        q.pop();
        q.push(SimTime::from_secs(4), ());
    }

    #[test]
    fn scheduling_at_now_is_allowed() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(5), 1);
        q.pop();
        q.push(q.now(), 2); // zero-delay self-message
        assert_eq!(q.pop().unwrap().1, 2);
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1), 1);
        q.push(SimTime::from_secs(10), 10);
        let (t, v) = q.pop().unwrap();
        assert_eq!(v, 1);
        q.push(t + Duration::from_secs(2), 3);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 10);
        assert!(q.is_empty());
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        for i in 0..5 {
            q.push(SimTime::from_secs(i), i);
        }
        assert_eq!(q.len(), 5);
        q.clear();
        assert!(q.is_empty());
    }
}
