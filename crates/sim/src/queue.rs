//! The time-ordered event queue at the heart of the simulator.
//!
//! [`EventQueue`] owns the simulation clock and the monotone insertion
//! sequence; storage and ordering are delegated to a pluggable
//! [`Scheduler`] backend chosen via [`SchedulerKind`] (or any custom
//! implementation through [`EventQueue::from_backend`]).

use std::fmt;

use crate::sched::{BinaryHeapScheduler, Scheduler, SchedulerKind, TimingWheel};
use crate::time::SimTime;

/// A deterministic priority queue of `(SimTime, E)` events.
///
/// Ties at the same instant pop in insertion order — part of the
/// [`Scheduler`] contract — which keeps simulations reproducible
/// regardless of backend internals.
pub struct EventQueue<E> {
    backend: Backend<E>,
    seq: u128,
    now: SimTime,
}

/// Static dispatch over the built-in backends; `Custom` boxes anything
/// else implementing the trait.
enum Backend<E> {
    Heap(BinaryHeapScheduler<E>),
    Wheel(TimingWheel<E>),
    Custom(Box<dyn Scheduler<E> + Send>),
}

impl<E> Backend<E> {
    fn as_scheduler(&self) -> &dyn Scheduler<E> {
        match self {
            Backend::Heap(s) => s,
            Backend::Wheel(s) => s,
            Backend::Custom(s) => s.as_ref(),
        }
    }

    fn as_scheduler_mut(&mut self) -> &mut dyn Scheduler<E> {
        match self {
            Backend::Heap(s) => s,
            Backend::Wheel(s) => s,
            Backend::Custom(s) => s.as_mut(),
        }
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventQueue")
            .field("backend", &self.backend_name())
            .field("len", &self.len())
            .field("now", &self.now)
            .finish()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero on the default backend
    /// ([`SchedulerKind::TimingWheel`]).
    #[must_use]
    pub fn new() -> Self {
        Self::with_scheduler(SchedulerKind::default())
    }

    /// An empty queue at time zero on the chosen backend.
    #[must_use]
    pub fn with_scheduler(kind: SchedulerKind) -> Self {
        let backend = match kind {
            SchedulerKind::BinaryHeap => Backend::Heap(BinaryHeapScheduler::new()),
            SchedulerKind::TimingWheel => Backend::Wheel(TimingWheel::new()),
        };
        EventQueue {
            backend,
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// An empty queue over a caller-supplied [`Scheduler`] backend.
    #[must_use]
    pub fn from_backend<S: Scheduler<E> + Send + 'static>(backend: S) -> Self {
        EventQueue {
            backend: Backend::Custom(Box::new(backend)),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The backend's stable name (for logs and benches).
    #[must_use]
    pub fn backend_name(&self) -> &'static str {
        match &self.backend {
            Backend::Heap(_) => SchedulerKind::BinaryHeap.name(),
            Backend::Wheel(_) => SchedulerKind::TimingWheel.name(),
            Backend::Custom(_) => "custom",
        }
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics when `at` is in the past — scheduling backwards in time is
    /// always a protocol-logic bug.
    pub fn push(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past ({at:?} < {:?})",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        match &mut self.backend {
            Backend::Heap(s) => s.schedule(at, seq, event),
            Backend::Wheel(s) => s.schedule(at, seq, event),
            Backend::Custom(s) => s.schedule(at, seq, event),
        }
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let (t, e) = match &mut self.backend {
            Backend::Heap(s) => s.pop_next(),
            Backend::Wheel(s) => s.pop_next(),
            Backend::Custom(s) => s.pop_next(),
        }?;
        self.now = t;
        Some((t, e))
    }

    /// Pop the earliest event only when it is due strictly before
    /// `bound`, advancing the clock to its timestamp; `None` leaves the
    /// queue untouched. One backend call instead of the peek/pop pair a
    /// windowed engine would otherwise issue per in-window event.
    pub fn pop_before(&mut self, bound: SimTime) -> Option<(SimTime, E)> {
        let (t, e) = match &mut self.backend {
            Backend::Heap(s) => s.pop_next_before(bound),
            Backend::Wheel(s) => s.pop_next_before(bound),
            Backend::Custom(s) => s.pop_next_before(bound),
        }?;
        self.now = t;
        Some((t, e))
    }

    /// Schedule `event` at `at` under a caller-supplied tie-break key.
    ///
    /// This is the composition hook for multi-queue engines: a sharded
    /// world packs `(lane, origin, counter)` keys into the 128 bits so
    /// that `(time, seq)` keys stay totally ordered across every
    /// shard's queue — without any cross-shard coordination at
    /// assignment time — then pushes each event here. The queue's own
    /// counter is bumped past `seq` so later [`EventQueue::push`] calls
    /// never collide. Unlike `push`, `seq` need not arrive in
    /// increasing order (a cross-shard bus flush delivers older-key
    /// events late); it must only be unique per queue.
    ///
    /// # Panics
    /// Panics when `at` is in the past, exactly as [`EventQueue::push`].
    pub fn push_with_seq(&mut self, at: SimTime, seq: u128, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past ({at:?} < {:?})",
            self.now
        );
        self.seq = self.seq.max(seq.saturating_add(1));
        self.backend.as_scheduler_mut().schedule(at, seq, event);
    }

    /// Peek at the next event time without popping.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.backend.as_scheduler().peek_time()
    }

    /// Peek at the next event's full `(time, seq)` ordering key without
    /// popping — what a sharded engine compares across queues to find
    /// the globally earliest event.
    #[must_use]
    pub fn peek_key(&self) -> Option<(SimTime, u128)> {
        self.backend.as_scheduler().peek_key()
    }

    /// Current simulation time (timestamp of the last popped event).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.backend.as_scheduler().len()
    }

    /// True when no events remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.backend.as_scheduler().is_empty()
    }

    /// Discard all pending events (used at simulation shutdown).
    pub fn clear(&mut self) {
        self.backend.as_scheduler_mut().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    fn all_kinds() -> [SchedulerKind; 2] {
        [SchedulerKind::BinaryHeap, SchedulerKind::TimingWheel]
    }

    #[test]
    fn pops_in_time_order() {
        for kind in all_kinds() {
            let mut q = EventQueue::with_scheduler(kind);
            q.push(SimTime::from_secs(3), "c");
            q.push(SimTime::from_secs(1), "a");
            q.push(SimTime::from_secs(2), "b");
            assert_eq!(q.pop().unwrap().1, "a");
            assert_eq!(q.pop().unwrap().1, "b");
            assert_eq!(q.pop().unwrap().1, "c");
            assert!(q.pop().is_none());
        }
    }

    #[test]
    fn ties_break_by_insertion_order() {
        for kind in all_kinds() {
            let mut q = EventQueue::with_scheduler(kind);
            let t = SimTime::from_secs(1);
            for i in 0..100 {
                q.push(t, i);
            }
            for i in 0..100 {
                assert_eq!(q.pop().unwrap().1, i);
            }
        }
    }

    #[test]
    fn clock_advances() {
        for kind in all_kinds() {
            let mut q = EventQueue::with_scheduler(kind);
            q.push(SimTime::from_secs(5), ());
            assert_eq!(q.now(), SimTime::ZERO);
            q.pop();
            assert_eq!(q.now(), SimTime::from_secs(5));
        }
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(5), ());
        q.pop();
        q.push(SimTime::from_secs(4), ());
    }

    #[test]
    fn scheduling_at_now_is_allowed() {
        for kind in all_kinds() {
            let mut q = EventQueue::with_scheduler(kind);
            q.push(SimTime::from_secs(5), 1);
            q.pop();
            q.push(q.now(), 2); // zero-delay self-message
            assert_eq!(q.pop().unwrap().1, 2);
        }
    }

    #[test]
    fn interleaved_push_pop() {
        for kind in all_kinds() {
            let mut q = EventQueue::with_scheduler(kind);
            q.push(SimTime::from_secs(1), 1);
            q.push(SimTime::from_secs(10), 10);
            let (t, v) = q.pop().unwrap();
            assert_eq!(v, 1);
            q.push(t + Duration::from_secs(2), 3);
            assert_eq!(q.pop().unwrap().1, 3);
            assert_eq!(q.pop().unwrap().1, 10);
            assert!(q.is_empty());
        }
    }

    #[test]
    fn len_and_clear() {
        for kind in all_kinds() {
            let mut q = EventQueue::with_scheduler(kind);
            for i in 0..5 {
                q.push(SimTime::from_secs(i), i);
            }
            assert_eq!(q.len(), 5);
            q.clear();
            assert!(q.is_empty());
        }
    }

    #[test]
    fn peek_time_matches_next_pop() {
        for kind in all_kinds() {
            let mut q = EventQueue::with_scheduler(kind);
            assert_eq!(q.peek_time(), None);
            q.push(SimTime::from_millis(7), 1);
            q.push(SimTime::from_millis(3), 2);
            assert_eq!(q.peek_time(), Some(SimTime::from_millis(3)));
            let (t, _) = q.pop().unwrap();
            assert_eq!(t, SimTime::from_millis(3));
            assert_eq!(q.peek_time(), Some(SimTime::from_millis(7)));
        }
    }

    #[test]
    fn peek_key_exposes_time_and_seq() {
        for kind in all_kinds() {
            let mut q = EventQueue::with_scheduler(kind);
            assert_eq!(q.peek_key(), None);
            q.push(SimTime::from_millis(5), "a"); // seq 0
            q.push(SimTime::from_millis(5), "b"); // seq 1
            assert_eq!(q.peek_key(), Some((SimTime::from_millis(5), 0)));
            q.pop();
            assert_eq!(q.peek_key(), Some((SimTime::from_millis(5), 1)));
        }
    }

    #[test]
    fn push_with_seq_orders_across_queues() {
        // a sharded world interleaves one global counter over two
        // queues; each queue must honour the supplied seq, including a
        // bus-flushed event whose seq is older than a later local push
        for kind in all_kinds() {
            let t = SimTime::from_millis(3);
            let mut q = EventQueue::with_scheduler(kind);
            q.push_with_seq(t, 7, "late");
            q.push_with_seq(t, 2, "early"); // flushed in after the fact
            assert_eq!(q.peek_key(), Some((t, 2)));
            assert_eq!(q.pop().unwrap().1, "early");
            assert_eq!(q.pop().unwrap().1, "late");
            // the internal counter moved past the largest supplied seq
            q.push(t, "next");
            assert_eq!(q.peek_key(), Some((t, 8)));
        }
    }

    #[test]
    fn pop_before_honours_the_bound() {
        for kind in all_kinds() {
            let mut q = EventQueue::with_scheduler(kind);
            q.push(SimTime::from_millis(3), "a");
            q.push(SimTime::from_millis(9), "b");
            // strict bound: an event exactly at the bound stays queued
            assert_eq!(q.pop_before(SimTime::from_millis(3)), None);
            assert_eq!(
                q.pop_before(SimTime::from_millis(4)),
                Some((SimTime::from_millis(3), "a"))
            );
            assert_eq!(q.now(), SimTime::from_millis(3));
            assert_eq!(q.pop_before(SimTime::from_millis(9)), None);
            assert_eq!(q.len(), 1);
            assert_eq!(q.pop_before(SimTime(u64::MAX)).unwrap().1, "b");
            assert_eq!(q.pop_before(SimTime(u64::MAX)), None);
        }
    }

    #[test]
    fn custom_backend_plugs_in() {
        let mut q = EventQueue::from_backend(crate::sched::BinaryHeapScheduler::new());
        assert_eq!(q.backend_name(), "custom");
        q.push(SimTime::from_secs(1), 9);
        assert_eq!(q.pop().unwrap().1, 9);
    }

    #[test]
    fn default_backend_is_the_wheel() {
        let q: EventQueue<()> = EventQueue::new();
        assert_eq!(q.backend_name(), "timing-wheel");
    }
}
