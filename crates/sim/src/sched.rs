//! Pluggable event-queue backends.
//!
//! [`EventQueue`](crate::EventQueue) delegates storage and ordering to a
//! [`Scheduler`] implementation. Two backends ship with the engine:
//!
//! * [`BinaryHeapScheduler`] — a classic `O(log n)` priority heap; the
//!   reference implementation and the right choice for sparse or highly
//!   irregular workloads.
//! * [`TimingWheel`] — a hierarchical timing wheel with `O(1)` insertion.
//!   Simulation workloads are dominated by short periodic timers
//!   (stabilize / finger / surveillance / walk) and latency-bounded
//!   message deliveries, which land in the lowest wheel levels and make
//!   this backend substantially faster than the heap at scale.
//!
//! # Determinism contract
//!
//! Every backend MUST pop events in ascending `(time, seq)` order, where
//! `seq` is a caller-supplied tie-break key — for a plain
//! [`EventQueue`](crate::EventQueue) the monotonically increasing
//! insertion sequence number, for a sharded world a packed
//! `(lane, origin, counter)` key that is unique without being dense.
//! Ties at the same timestamp therefore pop in key order (insertion
//! FIFO for the plain queue). This contract is what makes simulations
//! byte-for-byte reproducible regardless of the backend chosen; the
//! cross-backend regression tests in `tests/scheduler_equivalence.rs`
//! enforce it.

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A time-ordered event store: the backend of an
/// [`EventQueue`](crate::EventQueue).
///
/// Implementations must honour the determinism contract documented at the
/// [module level](self): events pop in ascending `(time, seq)` order.
pub trait Scheduler<E> {
    /// Store `event` at `time` with tie-break key `seq`.
    ///
    /// The caller guarantees `seq` is globally unique and `time` is
    /// never earlier than the last popped time. Keys normally arrive
    /// strictly increasing, but neither density nor monotonicity is
    /// required: a sharded engine packs `(lane, origin, counter)` keys
    /// into the 128 bits and a cross-shard bus flush may deliver an
    /// *older* (smaller-key) event after younger local ones; backends
    /// must order all of those correctly too.
    fn schedule(&mut self, time: SimTime, seq: u128, event: E);

    /// Remove and return the earliest `(time, event)` pair, breaking
    /// timestamp ties by insertion order.
    fn pop_next(&mut self) -> Option<(SimTime, E)>;

    /// The timestamp of the next event without removing it.
    fn peek_time(&self) -> Option<SimTime>;

    /// The full `(time, seq)` ordering key of the next event without
    /// removing it — the hook a multi-queue (sharded) engine uses to
    /// pick the globally earliest event across several backends.
    fn peek_key(&self) -> Option<(SimTime, u128)>;

    /// Pop the earliest event only when it is due strictly before
    /// `bound`; otherwise leave the store untouched and return `None`.
    ///
    /// This is the batch-execution hook: a windowed engine drains a
    /// shard's in-window events with one backend call per event instead
    /// of a peek/pop pair. The default implementation is exactly that
    /// pair; backends may override it when they can answer cheaper.
    fn pop_next_before(&mut self, bound: SimTime) -> Option<(SimTime, E)> {
        if self.peek_time().is_some_and(|t| t < bound) {
            self.pop_next()
        } else {
            None
        }
    }

    /// Number of stored events.
    fn len(&self) -> usize;

    /// True when no events are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Discard all stored events.
    fn clear(&mut self);
}

/// Which [`Scheduler`] backend an [`EventQueue`](crate::EventQueue) uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// [`BinaryHeapScheduler`]: `O(log n)` reference backend.
    BinaryHeap,
    /// [`TimingWheel`]: `O(1)`-insert hierarchical wheel (the default).
    #[default]
    TimingWheel,
}

impl SchedulerKind {
    /// Short stable name (used by benches and CLI parsing).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::BinaryHeap => "binary-heap",
            SchedulerKind::TimingWheel => "timing-wheel",
        }
    }

    /// Parse a backend name as accepted by `OCTOPUS_SCHEDULER` and the
    /// bench harness CLI (`binary-heap`/`heap`, `timing-wheel`/`wheel`).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "binary-heap" | "heap" => Some(SchedulerKind::BinaryHeap),
            "timing-wheel" | "wheel" => Some(SchedulerKind::TimingWheel),
            _ => None,
        }
    }
}

/// An event plus its total-order key.
#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u128,
    event: E,
}

impl<E> Entry<E> {
    fn key(&self) -> (SimTime, u128) {
        (self.time, self.seq)
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert so the earliest time pops
        // first and the lower sequence number wins ties.
        other.key().cmp(&self.key())
    }
}

/// The `O(log n)` reference backend: a binary max-heap over inverted
/// `(time, seq)` keys.
#[derive(Debug)]
pub struct BinaryHeapScheduler<E> {
    heap: BinaryHeap<Entry<E>>,
}

impl<E> Default for BinaryHeapScheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> BinaryHeapScheduler<E> {
    /// An empty heap.
    #[must_use]
    pub fn new() -> Self {
        BinaryHeapScheduler {
            heap: BinaryHeap::new(),
        }
    }
}

impl<E> Scheduler<E> for BinaryHeapScheduler<E> {
    fn schedule(&mut self, time: SimTime, seq: u128, event: E) {
        self.heap.push(Entry { time, seq, event });
    }

    fn pop_next(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    fn peek_key(&self) -> Option<(SimTime, u128)> {
        self.heap.peek().map(Entry::key)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn clear(&mut self) {
        self.heap.clear();
    }
}

// --- hierarchical timing wheel -----------------------------------------

/// Bits per wheel level: 64 slots per level.
const LEVEL_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << LEVEL_BITS;
/// Bitmap mask over one level's slot indices.
const SLOT_MASK: u64 = (SLOTS as u64) - 1;
/// Number of wheel levels.
const LEVELS: usize = 6;
/// One tick is 2^TICK_BITS microseconds (≈ 8 ms). Coarse enough that a
/// busy simulation puts a batch of events in each level-0 slot (one
/// slot sort amortizes over the batch, and typical WAN latencies land
/// directly in level 0), fine enough that slot sorts stay tiny.
const TICK_BITS: u32 = 13;
/// Ticks covered by the whole wheel; events further out overflow to a
/// fallback heap and migrate in as the cursor approaches.
const HORIZON_TICKS: u64 = 1 << (LEVEL_BITS * LEVELS as u32);

/// One wheel level: 64 slots of unsorted entries plus an occupancy
/// bitmap for constant-time next-slot scans.
#[derive(Debug)]
struct Level<E> {
    slots: Vec<Vec<Entry<E>>>,
    occupied: u64,
}

impl<E> Level<E> {
    fn new() -> Self {
        Level {
            slots: (0..SLOTS).map(|_| Vec::new()).collect(),
            occupied: 0,
        }
    }
}

/// The `O(1)`-insert hierarchical timing wheel backend.
///
/// Time is bucketed into ≈ 8 ms ticks. Level `l` has 64 slots spanning
/// `64^l` ticks each, so the six levels cover ≈ 17 simulated years;
/// rarer events beyond the horizon wait in a small fallback heap. An
/// event is filed at the shallowest level whose slot span exceeds its
/// delay; as the cursor reaches a coarse slot its contents cascade into
/// finer levels, and a level-0 slot is drained into the sorted `ready`
/// run from which `pop_next` serves. Sorting each drained slot by
/// `(time, seq)` restores the exact total order the determinism contract
/// requires — sub-tick timestamps included.
#[derive(Debug)]
pub struct TimingWheel<E> {
    levels: Vec<Level<E>>,
    /// Current wheel position in ticks. Invariant: every slot whose
    /// start lies strictly before the cursor is empty.
    cursor: u64,
    /// Events due next, sorted *descending* by `(time, seq)` and served
    /// from the tail, so a drained slot can be sorted in place and
    /// swapped in without copying. Non-empty whenever `len > 0` and
    /// `staged` is empty (maintained eagerly so `peek_time` is `O(1)`).
    ready: Vec<Entry<E>>,
    /// Entries scheduled at or behind the cursor tick (timers re-armed
    /// behind the eagerly-advanced cursor, and cross-shard bus-flush
    /// batches). A second min-heap beside `ready`: a bus flush can dump
    /// tens of thousands of same-tick entries here in one burst, and a
    /// heap absorbs any burst shape in `O(log n)` per entry where a
    /// sorted run degrades to a quadratic memmove. `pop_next` serves
    /// from whichever of `ready`'s tail and this heap's top holds the
    /// smaller key — no merge, ever.
    staged: BinaryHeap<Entry<E>>,
    /// Events beyond the wheel horizon (min-heap via inverted `Ord`).
    overflow: BinaryHeap<Entry<E>>,
    len: usize,
}

impl<E> Default for TimingWheel<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> TimingWheel<E> {
    /// An empty wheel positioned at time zero.
    #[must_use]
    pub fn new() -> Self {
        TimingWheel {
            levels: (0..LEVELS).map(|_| Level::new()).collect(),
            cursor: 0,
            ready: Vec::new(),
            staged: BinaryHeap::new(),
            overflow: BinaryHeap::new(),
            len: 0,
        }
    }

    fn tick_of(time: SimTime) -> u64 {
        time.0 >> TICK_BITS
    }

    /// File `entry` into the structure appropriate for its delay:
    /// `ready` when already due, a wheel slot inside the horizon, or the
    /// overflow heap beyond it.
    fn place(&mut self, entry: Entry<E>) {
        let tick = Self::tick_of(entry.time);
        if tick <= self.cursor {
            // Already inside the drained region — a timer re-armed just
            // behind the eagerly-advanced cursor, or a cross-shard
            // bus-flush batch. Inserting into `ready` directly would
            // memmove `O(ready)` per entry (quadratic per flush batch);
            // the staged heap takes any burst at `O(log n)` per entry.
            self.staged.push(entry);
            return;
        }
        let delta = tick - self.cursor;
        if delta >= HORIZON_TICKS {
            self.overflow.push(entry);
            return;
        }
        let level = (63 - delta.leading_zeros()) as usize / LEVEL_BITS as usize;
        let idx = ((tick >> (LEVEL_BITS * level as u32)) & SLOT_MASK) as usize;
        self.levels[level].slots[idx].push(entry);
        self.levels[level].occupied |= 1 << idx;
    }

    /// Earliest slot-start tick (≥ cursor) of any occupied slot at
    /// `level`, accounting for wrap-around into the next rotation.
    fn next_occupied_tick(&self, level: usize) -> Option<u64> {
        let occ = self.levels[level].occupied;
        if occ == 0 {
            return None;
        }
        let shift = LEVEL_BITS * level as u32;
        let span = 1u64 << shift; // ticks per slot
        let rotation = span << LEVEL_BITS; // ticks per full rotation
        let cur_idx = (self.cursor >> shift) & SLOT_MASK;
        let block = self.cursor & !(rotation - 1);
        let at_slot_start = self.cursor == block + cur_idx * span;
        // Bits at or above the cursor index belong to the current
        // rotation — except the cursor's own slot, which can only hold
        // next-rotation events once the cursor has moved past its start.
        let mut current = occ & (!0u64 << cur_idx);
        let mut wrapped = occ & !(!0u64 << cur_idx);
        if !at_slot_start {
            wrapped |= occ & (1 << cur_idx);
            current &= !(1 << cur_idx);
        }
        if current != 0 {
            Some(block + u64::from(current.trailing_zeros()) * span)
        } else {
            Some(block + rotation + u64::from(wrapped.trailing_zeros()) * span)
        }
    }

    /// Advance the cursor to the earliest pending tick and drain
    /// everything due there into `ready` (no-op when already non-empty,
    /// drained, or holding a staged batch that pops first anyway).
    fn ensure_ready(&mut self) {
        while self.ready.is_empty() && self.staged.is_empty() && self.len > 0 {
            let mut best_tick = u64::MAX;
            for level in 0..LEVELS {
                if let Some(t) = self.next_occupied_tick(level) {
                    best_tick = best_tick.min(t);
                }
            }
            if let Some(top) = self.overflow.peek() {
                best_tick = best_tick.min(Self::tick_of(top.time));
            }
            debug_assert!(best_tick != u64::MAX, "len > 0 but no events stored");
            debug_assert!(best_tick >= self.cursor, "wheel cursor moved backwards");
            self.cursor = best_tick;
            self.drain_due_at_cursor();
        }
    }

    /// Drain every source that is due exactly at the cursor tick —
    /// overflow entries, coarse slots starting here (cascaded fine-ward)
    /// and the level-0 slot — into one sorted `ready` run. Handling all
    /// sources of the tick together is what keeps same-timestamp events
    /// from different levels in global `(time, seq)` order.
    fn drain_due_at_cursor(&mut self) {
        debug_assert!(self.ready.is_empty());
        while let Some(top) = self.overflow.peek() {
            if Self::tick_of(top.time) == self.cursor {
                let e = self.overflow.pop().expect("peeked entry exists");
                self.ready.push(e);
            } else {
                break;
            }
        }
        // Coarse before fine: a cascading level may refill the slot a
        // finer level is about to visit at this same tick.
        for level in (1..LEVELS).rev() {
            let shift = LEVEL_BITS * level as u32;
            let span = 1u64 << shift;
            if self.cursor & (span - 1) != 0 {
                // the cursor is inside, not at the start of, this
                // level's slot — nothing is due here
                continue;
            }
            let idx = ((self.cursor >> shift) & SLOT_MASK) as usize;
            if self.levels[level].occupied & (1 << idx) == 0 {
                continue;
            }
            let mut batch = std::mem::take(&mut self.levels[level].slots[idx]);
            self.levels[level].occupied &= !(1 << idx);
            for e in batch.drain(..) {
                if Self::tick_of(e.time) == self.cursor {
                    self.ready.push(e);
                } else {
                    self.place(e);
                }
            }
            self.levels[level].slots[idx] = batch; // keep capacity
        }
        let idx0 = (self.cursor & SLOT_MASK) as usize;
        if self.levels[0].occupied & (1 << idx0) != 0 {
            let mut batch = std::mem::take(&mut self.levels[0].slots[idx0]);
            self.levels[0].occupied &= !(1 << idx0);
            debug_assert!(batch.iter().all(|e| Self::tick_of(e.time) == self.cursor));
            if self.ready.is_empty() {
                // Common case: the whole tick lives in one level-0 slot.
                // Sort it in place and swap it in — the emptied ready
                // vec becomes the slot's fresh buffer. Zero copies.
                batch.sort_unstable_by_key(|e| Reverse(e.key()));
                std::mem::swap(&mut self.ready, &mut batch);
            } else {
                self.ready.append(&mut batch);
                self.ready.sort_unstable_by_key(|e| Reverse(e.key()));
            }
            self.levels[0].slots[idx0] = batch;
        } else {
            self.ready.sort_unstable_by_key(|e| Reverse(e.key()));
        }
    }
}

impl<E> Scheduler<E> for TimingWheel<E> {
    fn schedule(&mut self, time: SimTime, seq: u128, event: E) {
        self.place(Entry { time, seq, event });
        self.len += 1;
        self.ensure_ready();
    }

    fn pop_next(&mut self) -> Option<(SimTime, E)> {
        // Serve from whichever of ready's tail (its minimum) and the
        // staged heap's top holds the smaller key.
        let from_staged = match (self.ready.last(), self.staged.peek()) {
            (Some(r), Some(s)) => s.key() < r.key(),
            (None, Some(_)) => true,
            _ => false,
        };
        let e = if from_staged {
            self.staged.pop()
        } else {
            self.ready.pop()
        }?;
        self.len -= 1;
        self.ensure_ready();
        Some((e.time, e.event))
    }

    fn peek_time(&self) -> Option<SimTime> {
        self.peek_key().map(|(t, _)| t)
    }

    fn peek_key(&self) -> Option<(SimTime, u128)> {
        match (self.ready.last(), self.staged.peek()) {
            (Some(r), Some(s)) => Some(r.key().min(s.key())),
            (r, s) => r.or(s).map(Entry::key),
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn clear(&mut self) {
        for level in &mut self.levels {
            if level.occupied != 0 {
                for slot in &mut level.slots {
                    slot.clear();
                }
                level.occupied = 0;
            }
        }
        self.ready.clear();
        self.staged.clear();
        self.overflow.clear();
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    fn backends() -> Vec<(SchedulerKind, Box<dyn Scheduler<u64>>)> {
        vec![
            (
                SchedulerKind::BinaryHeap,
                Box::new(BinaryHeapScheduler::new()),
            ),
            (SchedulerKind::TimingWheel, Box::new(TimingWheel::new())),
        ]
    }

    #[test]
    fn both_backends_pop_in_time_then_seq_order() {
        for (kind, mut s) in backends() {
            s.schedule(SimTime::from_secs(3), 0, 30);
            s.schedule(SimTime::from_secs(1), 1, 10);
            s.schedule(SimTime::from_secs(1), 2, 11);
            s.schedule(SimTime::from_secs(2), 3, 20);
            let order: Vec<u64> = std::iter::from_fn(|| s.pop_next().map(|(_, e)| e)).collect();
            assert_eq!(order, vec![10, 11, 20, 30], "backend {kind:?}");
        }
    }

    #[test]
    fn wheel_handles_sub_tick_ordering() {
        // events inside the same ≈1 ms tick must still sort by exact time
        let mut w = TimingWheel::new();
        w.schedule(SimTime(500), 0, 2);
        w.schedule(SimTime(100), 1, 1);
        w.schedule(SimTime(900), 2, 3);
        assert_eq!(w.pop_next(), Some((SimTime(100), 1)));
        assert_eq!(w.pop_next(), Some((SimTime(500), 2)));
        assert_eq!(w.pop_next(), Some((SimTime(900), 3)));
    }

    #[test]
    fn wheel_cascades_across_levels() {
        let mut w = TimingWheel::new();
        // spread events across every level's range
        let delays_s = [0u64, 1, 10, 60, 600, 3600, 86_400];
        for (i, &d) in delays_s.iter().enumerate() {
            w.schedule(SimTime::from_secs(d), i as u128, d);
        }
        let mut prev = None;
        while let Some((t, d)) = w.pop_next() {
            assert_eq!(t, SimTime::from_secs(d));
            if let Some(p) = prev {
                assert!(t >= p);
            }
            prev = Some(t);
        }
        assert!(w.is_empty());
    }

    #[test]
    fn wheel_overflow_beyond_horizon() {
        let mut w = TimingWheel::new();
        let far = SimTime((HORIZON_TICKS + 5) << TICK_BITS);
        w.schedule(far, 0, 99);
        w.schedule(SimTime::from_secs(1), 1, 1);
        assert_eq!(w.len(), 2);
        assert_eq!(w.pop_next().map(|(_, e)| e), Some(1));
        assert_eq!(w.pop_next(), Some((far, 99)));
        assert!(w.pop_next().is_none());
    }

    #[test]
    fn wheel_push_behind_cursor_lands_in_ready_run() {
        let mut w = TimingWheel::new();
        w.schedule(SimTime::from_secs(10), 0, 100);
        // the eager cursor has advanced to t=10s; an earlier event must
        // still pop first
        w.schedule(SimTime::from_secs(2), 1, 2);
        w.schedule(SimTime::from_secs(2), 2, 3);
        assert_eq!(w.peek_time(), Some(SimTime::from_secs(2)));
        assert_eq!(w.pop_next().map(|(_, e)| e), Some(2));
        assert_eq!(w.pop_next().map(|(_, e)| e), Some(3));
        assert_eq!(w.pop_next().map(|(_, e)| e), Some(100));
    }

    #[test]
    fn wheel_staged_batch_keeps_exact_order() {
        // a bus-flush-shaped batch: many entries land behind the cursor
        // at once, interleaved with entries already in the ready run —
        // the staged path must preserve exact (time, seq) order and
        // O(1) peeks must see the staged minimum immediately
        let mut w = TimingWheel::new();
        w.schedule(SimTime::from_secs(30), 1000, 9999);
        // cursor has advanced to t=30s; deliver a shuffled batch behind it
        for (i, &t_ms) in [700u64, 100, 500, 300, 900, 200].iter().enumerate() {
            w.schedule(SimTime::from_millis(t_ms), i as u128, t_ms);
            assert_eq!(
                w.peek_time(),
                Some(SimTime::from_millis([700, 100, 100, 100, 100, 100][i])),
            );
        }
        let order: Vec<u64> = std::iter::from_fn(|| w.pop_next().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![100, 200, 300, 500, 700, 900, 9999]);
        assert!(w.is_empty());
    }

    #[test]
    fn wheel_next_rotation_same_slot_index() {
        // an event whose delta wraps to the cursor's own slot index in
        // the next rotation must not be popped early
        let mut w = TimingWheel::new();
        let base = SimTime(65 << TICK_BITS); // cursor tick 65
        w.schedule(base, 0, 0);
        assert_eq!(w.pop_next().map(|(_, e)| e), Some(0));
        let wrapped = SimTime((65 + 4095) << TICK_BITS); // level-1 slot idx 1, next rotation
        let near = SimTime((65 + 100) << TICK_BITS);
        w.schedule(wrapped, 1, 1);
        w.schedule(near, 2, 2);
        assert_eq!(w.pop_next(), Some((near, 2)));
        assert_eq!(w.pop_next(), Some((wrapped, 1)));
    }

    #[test]
    fn clear_resets_backends() {
        for (kind, mut s) in backends() {
            for i in 0..100 {
                s.schedule(SimTime::from_millis(i * 7), u128::from(i), i);
            }
            assert_eq!(s.len(), 100, "backend {kind:?}");
            s.clear();
            assert!(s.is_empty());
            assert_eq!(s.peek_time(), None);
            // reusable after clear
            s.schedule(SimTime::from_secs(1000), 0, 1);
            assert_eq!(s.pop_next().map(|(_, e)| e), Some(1));
        }
    }

    #[test]
    fn kind_parse_roundtrip() {
        for kind in [SchedulerKind::BinaryHeap, SchedulerKind::TimingWheel] {
            assert_eq!(SchedulerKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(
            SchedulerKind::parse("heap"),
            Some(SchedulerKind::BinaryHeap)
        );
        assert_eq!(
            SchedulerKind::parse("wheel"),
            Some(SchedulerKind::TimingWheel)
        );
        assert_eq!(SchedulerKind::parse("fifo"), None);
        assert_eq!(SchedulerKind::default(), SchedulerKind::TimingWheel);
    }

    #[test]
    fn dense_periodic_workload_matches_heap() {
        // a miniature of the paper workload: periodic timers re-armed on
        // pop, plus message deliveries with pseudo-random latencies
        let mut heap: BinaryHeapScheduler<u64> = BinaryHeapScheduler::new();
        let mut wheel: TimingWheel<u64> = TimingWheel::new();
        let mut seq = 0u128;
        let push = |h: &mut BinaryHeapScheduler<u64>,
                    w: &mut TimingWheel<u64>,
                    t: SimTime,
                    s: &mut u128,
                    e: u64| {
            h.schedule(t, *s, e);
            w.schedule(t, *s, e);
            *s += 1;
        };
        for node in 0..50u64 {
            push(&mut heap, &mut wheel, SimTime(node * 137), &mut seq, node);
        }
        let end = SimTime::from_secs(20);
        loop {
            let a = heap.pop_next();
            let b = wheel.pop_next();
            assert_eq!(
                a.as_ref().map(|(t, e)| (*t, *e)),
                b.as_ref().map(|(t, e)| (*t, *e))
            );
            let Some((t, e)) = a else { break };
            // deliveries (payload >= 1000) terminate; timers re-arm and
            // emit one delivery with a deterministic pseudo-latency
            if t >= end || e >= 1000 {
                continue;
            }
            let lat = crate::rng::split_seed(e, t.0) % 400_000; // < 400 ms
            push(
                &mut heap,
                &mut wheel,
                t + Duration::from_secs(2),
                &mut seq,
                e,
            );
            push(&mut heap, &mut wheel, t + Duration(lat), &mut seq, e + 1000);
        }
        assert!(heap.is_empty() && wheel.is_empty());
    }
}
