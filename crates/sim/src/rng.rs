//! Deterministic RNG streams.
//!
//! Every stochastic component of a simulation (latency sampling, churn,
//! adversary choices, per-node protocol randomness) draws from its own
//! stream derived from one master seed. Components then stay reproducible
//! *independently*: adding draws in one component cannot shift another
//! component's sequence — essential when comparing attack configurations.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derive a child seed from a master seed and a component label.
///
/// Uses the SplitMix64 finalizer, which is well distributed even for
/// adjacent labels.
#[must_use]
pub fn split_seed(master: u64, label: u64) -> u64 {
    let mut z = master ^ label.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A named RNG stream: `derive_rng(master, b"latency", 0)`.
#[must_use]
pub fn derive_rng(master: u64, component: &[u8], index: u64) -> StdRng {
    let mut label = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
    for &b in component {
        label ^= u64::from(b);
        label = label.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(split_seed(split_seed(master, label), index))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic() {
        let mut a = derive_rng(42, b"latency", 0);
        let mut b = derive_rng(42, b"latency", 0);
        let xs: Vec<u64> = (0..10).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..10).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn component_streams_independent() {
        let mut a = derive_rng(42, b"latency", 0);
        let mut b = derive_rng(42, b"churn", 0);
        let xs: Vec<u64> = (0..10).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..10).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn index_separates_streams() {
        let mut a = derive_rng(42, b"node", 1);
        let mut b = derive_rng(42, b"node", 2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn master_seed_changes_everything() {
        let mut a = derive_rng(1, b"x", 0);
        let mut b = derive_rng(2, b"x", 0);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn split_seed_avalanche() {
        // adjacent labels should differ in roughly half the bits
        let a = split_seed(42, 1);
        let b = split_seed(42, 2);
        let differing = (a ^ b).count_ones();
        assert!(differing >= 16, "weak diffusion: {differing} bits");
    }
}
