//! Simulated time.
//!
//! Time is kept in integer microseconds to make event ordering exact and
//! platform-independent (floating-point clocks accumulate rounding that
//! breaks determinism across optimization levels).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant on the simulation clock (microseconds since sim start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time (microseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// Instant at `s` seconds.
    #[must_use]
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Instant at `ms` milliseconds.
    #[must_use]
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1000)
    }

    /// Seconds as a float (for reporting).
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Milliseconds as a float (for reporting).
    #[must_use]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Saturating difference `self - earlier`.
    #[must_use]
    pub fn since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Duration {
    /// Zero-length span.
    pub const ZERO: Duration = Duration(0);

    /// Span of `s` seconds.
    #[must_use]
    pub fn from_secs(s: u64) -> Self {
        Duration(s * 1_000_000)
    }

    /// Span of `ms` milliseconds.
    #[must_use]
    pub fn from_millis(ms: u64) -> Self {
        Duration(ms * 1000)
    }

    /// Span of `s` (float) seconds, rounded to the microsecond.
    #[must_use]
    pub fn from_secs_f64(s: f64) -> Self {
        Duration((s * 1e6).round().max(0.0) as u64)
    }

    /// Span of `ms` (float) milliseconds, rounded to the microsecond.
    #[must_use]
    pub fn from_millis_f64(ms: f64) -> Self {
        Duration((ms * 1e3).round().max(0.0) as u64)
    }

    /// Seconds as a float.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Milliseconds as a float.
    #[must_use]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Scale by an integer factor.
    #[must_use]
    pub fn saturating_mul(self, k: u64) -> Duration {
        Duration(self.0.saturating_mul(k))
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl Sub for SimTime {
    type Output = Duration;
    fn sub(self, rhs: SimTime) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_secs(2).0, 2_000_000);
        assert_eq!(SimTime::from_millis(2).0, 2000);
        assert_eq!(Duration::from_secs_f64(0.5).0, 500_000);
        assert_eq!(Duration::from_millis_f64(1.5).0, 1500);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1) + Duration::from_millis(500);
        assert_eq!(t.0, 1_500_000);
        assert_eq!((t - SimTime::from_secs(1)).as_millis_f64(), 500.0);
        assert_eq!(t.since(SimTime::from_secs(2)), Duration::ZERO);
    }

    #[test]
    fn negative_float_clamped() {
        assert_eq!(Duration::from_secs_f64(-1.0), Duration::ZERO);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert!(Duration::from_secs(1) > Duration::from_millis(999));
    }
}
