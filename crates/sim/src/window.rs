//! Conservative lookahead windows for multi-queue (sharded) execution.
//!
//! A sharded simulation runs one event queue per shard and parks
//! cross-shard messages in a bus between synchronization barriers. The
//! classic conservative-PDES argument makes that safe: if every
//! cross-shard link has latency at least `L` (the *lookahead*), then an
//! event executing at time `t` can only schedule remote events at
//! `t + L` or later. All events strictly before `earliest + L` — where
//! `earliest` is the globally earliest pending timestamp at the last
//! barrier — are therefore unaffected by messages still in flight on
//! the bus, and may execute before the next flush.
//!
//! [`LookaheadWindow`] is that bound as a value: barriers re-open it
//! from the earliest pending event, [`LookaheadWindow::covers`] asks
//! whether a timestamp is safe to execute without flushing first, and
//! the monotone `end` doubles as the proof obligation every parked bus
//! message must satisfy (`arrival >= end`).

use crate::time::{Duration, SimTime};

/// The safe-execution bound of a conservatively synchronized shard set.
///
/// The window's `end` is maintained monotonically: re-opening from an
/// earlier timestamp than a previous barrier can never shrink it, so a
/// message parked under an old window stays provably undeliverable
/// inside every later one.
///
/// ```
/// use octopus_sim::{Duration, LookaheadWindow, SimTime};
///
/// // links take at least 10 ms, so events earlier than
/// // earliest + 10 ms cannot be affected by in-flight messages
/// let mut w = LookaheadWindow::new(Duration::from_millis(10));
/// w.open(SimTime::from_millis(100));
/// assert!(w.covers(SimTime::from_millis(105)));
/// assert!(!w.covers(SimTime::from_millis(110))); // needs a barrier first
/// ```
#[derive(Clone, Copy, Debug)]
pub struct LookaheadWindow {
    lookahead: Duration,
    end: SimTime,
}

impl LookaheadWindow {
    /// A window with the given lookahead (the minimum cross-shard link
    /// latency), initially closed at time zero.
    #[must_use]
    pub fn new(lookahead: Duration) -> Self {
        LookaheadWindow {
            lookahead,
            end: SimTime::ZERO,
        }
    }

    /// The lookahead this window was built with.
    #[must_use]
    pub fn lookahead(&self) -> Duration {
        self.lookahead
    }

    /// The current safe-execution bound: events strictly before `end`
    /// may run without a barrier.
    #[must_use]
    pub fn end(&self) -> SimTime {
        self.end
    }

    /// Re-open the window at a barrier, given the earliest pending
    /// event time across all shards. Returns the new bound. The bound
    /// never moves backwards.
    pub fn open(&mut self, earliest: SimTime) -> SimTime {
        self.end = self.end.max(earliest + self.lookahead);
        self.end
    }

    /// Is an event at `t` safe to execute without flushing the bus
    /// first?
    ///
    /// With zero lookahead this is `false` for every `t`, which
    /// degenerates the engine to flushing before every pop — always
    /// correct, never fast; give the model a real minimum latency to
    /// get batching.
    #[must_use]
    pub fn covers(&self, t: SimTime) -> bool {
        t < self.end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opens_from_earliest_plus_lookahead() {
        let mut w = LookaheadWindow::new(Duration::from_millis(5));
        assert_eq!(w.lookahead(), Duration::from_millis(5));
        let end = w.open(SimTime::from_millis(20));
        assert_eq!(end, SimTime::from_millis(25));
        assert!(w.covers(SimTime::from_millis(24)));
        assert!(!w.covers(SimTime::from_millis(25)), "end is exclusive");
    }

    #[test]
    fn end_is_monotone() {
        let mut w = LookaheadWindow::new(Duration::from_millis(10));
        w.open(SimTime::from_millis(100));
        // a later barrier from an earlier timestamp must not shrink
        w.open(SimTime::from_millis(95));
        assert_eq!(w.end(), SimTime::from_millis(110));
    }

    #[test]
    fn zero_lookahead_covers_nothing() {
        let mut w = LookaheadWindow::new(Duration::ZERO);
        w.open(SimTime::from_millis(7));
        assert!(!w.covers(SimTime::from_millis(7)));
        assert!(
            w.covers(SimTime::from_millis(6)),
            "earlier events still safe"
        );
    }
}
