//! Cross-backend determinism regression: every [`Scheduler`] backend
//! must pop the exact same `(time, seq)` sequence for the same pushes —
//! the contract that makes simulation results backend-independent.

use octopus_sim::{derive_rng, Duration, EventQueue, SchedulerKind, SimTime};
use rand::Rng;

const KINDS: [SchedulerKind; 2] = [SchedulerKind::BinaryHeap, SchedulerKind::TimingWheel];

/// Property-style: 10 000 random `(time, payload)` events, pushed in a
/// random interleaving with pops, drain in an identical order from both
/// backends.
#[test]
fn backends_pop_10k_random_events_identically() {
    let mut traces: Vec<Vec<(SimTime, u64)>> = Vec::new();
    for kind in KINDS {
        let mut rng = derive_rng(0xC0FFEE, b"sched-prop", 0);
        let mut q: EventQueue<u64> = EventQueue::with_scheduler(kind);
        let mut trace = Vec::with_capacity(10_000);
        let mut pushed = 0u64;
        while pushed < 10_000 {
            // bursts of pushes at random offsets ahead of `now`…
            let burst = rng.gen_range(1..=8u64).min(10_000 - pushed);
            for _ in 0..burst {
                // heavy mass on short delays (timer/latency-like), a
                // long tail out to minutes, plus exact ties at `now`
                let micros = match rng.gen_range(0..10) {
                    0 => 0,
                    1..=6 => rng.gen_range(0..2_000_000),
                    7 | 8 => rng.gen_range(0..30_000_000),
                    _ => rng.gen_range(0..600_000_000),
                };
                q.push(q.now() + Duration(micros), pushed);
                pushed += 1;
            }
            // …interleaved with a few pops so the clock advances
            for _ in 0..rng.gen_range(0..4) {
                if let Some(ev) = q.pop() {
                    trace.push(ev);
                }
            }
        }
        while let Some(ev) = q.pop() {
            trace.push(ev);
        }
        assert_eq!(trace.len(), 10_000, "{kind:?} lost events");
        traces.push(trace);
    }
    assert_eq!(
        traces[0], traces[1],
        "binary-heap and timing-wheel backends diverged"
    );
}

/// Past-due injection: a sharded engine's bus flush may hand a queue an
/// event whose timestamp equals the last popped time (and whose key is
/// older than keys already pending there). Both backends must accept it
/// and keep serving exact `(time, key)` order — the timing wheel's
/// behind-the-cursor ready-run path must match the heap bit for bit.
#[test]
fn past_due_push_with_seq_matches_across_backends() {
    let mut traces: Vec<Vec<(SimTime, &str)>> = Vec::new();
    for kind in KINDS {
        let mut q: EventQueue<&str> = EventQueue::with_scheduler(kind);
        q.push_with_seq(SimTime::from_millis(5), 10, "first");
        q.push_with_seq(SimTime::from_millis(9), 40, "later");
        let mut trace = vec![q.pop().expect("first event")];
        // the clock now sits at 5 ms; flush-style injections arrive at
        // exactly that timestamp, with keys both below and above the
        // pending event's
        q.push_with_seq(SimTime::from_millis(5), 7, "at-now-older-key");
        q.push_with_seq(SimTime::from_millis(5), 90, "at-now-newer-key");
        q.push_with_seq(SimTime::from_millis(9), 12, "later-but-older-key");
        assert_eq!(q.peek_key(), Some((SimTime::from_millis(5), 7)), "{kind:?}");
        while let Some(ev) = q.pop() {
            trace.push(ev);
        }
        assert_eq!(trace.len(), 5, "{kind:?} lost events");
        traces.push(trace);
    }
    assert_eq!(
        traces[0], traces[1],
        "backends disagreed on past-due push_with_seq handling"
    );
    assert_eq!(
        traces[0].iter().map(|&(_, e)| e).collect::<Vec<_>>(),
        vec![
            "first",
            "at-now-older-key",
            "at-now-newer-key",
            "later-but-older-key",
            "later",
        ]
    );
}

/// A timestamp strictly before the last pop is a protocol-logic bug and
/// must be rejected loudly — identically — by every backend.
#[test]
#[should_panic(expected = "cannot schedule into the past")]
fn push_with_seq_before_last_pop_panics_on_heap() {
    let mut q: EventQueue<()> = EventQueue::with_scheduler(SchedulerKind::BinaryHeap);
    q.push_with_seq(SimTime::from_millis(5), 0, ());
    q.pop();
    q.push_with_seq(SimTime::from_millis(4), 1, ());
}

/// Same rejection on the timing wheel.
#[test]
#[should_panic(expected = "cannot schedule into the past")]
fn push_with_seq_before_last_pop_panics_on_wheel() {
    let mut q: EventQueue<()> = EventQueue::with_scheduler(SchedulerKind::TimingWheel);
    q.push_with_seq(SimTime::from_millis(5), 0, ());
    q.pop();
    q.push_with_seq(SimTime::from_millis(4), 1, ());
}

/// The trace itself is well-ordered: ascending `(time, insertion order)`.
#[test]
fn popped_order_is_monotone_with_fifo_ties() {
    for kind in KINDS {
        let mut q: EventQueue<u64> = EventQueue::with_scheduler(kind);
        let mut rng = derive_rng(7, b"sched-mono", 0);
        for i in 0..5_000u64 {
            // coarse timestamps force many exact ties
            let t = SimTime::from_millis(rng.gen_range(0..50));
            q.push(t, i);
        }
        let mut prev: Option<(SimTime, u64)> = None;
        while let Some((t, i)) = q.pop() {
            if let Some((pt, pi)) = prev {
                assert!(t > pt || (t == pt && i > pi), "{kind:?} broke FIFO ties");
            }
            prev = Some((t, i));
        }
    }
}
