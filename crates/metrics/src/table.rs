//! Plain-text table rendering for experiment output.
//!
//! The bench binaries print tables shaped like the paper's (same rows,
//! same columns) so paper-vs-measured comparison is a side-by-side read.

use std::fmt::Write as _;

/// A simple left-aligned text table.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// New table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    ///
    /// # Panics
    /// Panics when the row width differs from the header width.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for (c, cell) in cells.iter().enumerate() {
                let _ = write!(out, "{:<w$}", cell, w = widths[c] + 2);
            }
            out.push('\n');
        };
        line(&self.header, &mut out);
        let total: usize = widths.iter().map(|w| w + 2).sum();
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }
}

/// Format a float with `digits` decimal places (helper for table cells).
#[must_use]
pub fn fmt_f(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

/// Format a fraction as a percentage with two decimals.
#[must_use]
pub fn fmt_pct(v: f64) -> String {
    format!("{:.2}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(["Scheme", "Mean", "Median"]);
        t.row(["Octopus", "2.15", "1.61"]);
        t.row(["Chord", "1.35", "0.35"]);
        let s = t.render();
        assert!(s.contains("Octopus"));
        assert!(s.contains("Chord"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // all rows equal width
        assert_eq!(
            lines[0].len(),
            lines[2].trim_end().len().max(lines[0].len())
        );
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_f(1.23456, 2), "1.23");
        assert_eq!(fmt_pct(0.9991), "99.91%");
        assert_eq!(fmt_pct(0.0), "0.00%");
    }

    #[test]
    fn empty_table() {
        let t = TextTable::new(["x"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert!(t.render().contains('x'));
    }
}
