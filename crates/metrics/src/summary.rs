//! Summary statistics and CDFs.

/// Accumulates samples and reports mean/median/percentiles.
#[derive(Clone, Debug, Default)]
pub struct Summary {
    samples: Vec<f64>,
    sorted: bool,
}

impl Summary {
    /// Empty summary.
    #[must_use]
    pub fn new() -> Self {
        Summary::default()
    }

    /// Add one sample.
    pub fn add(&mut self, v: f64) {
        self.samples.push(v);
        self.sorted = false;
    }

    /// Add many samples.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, it: I) {
        self.samples.extend(it);
        self.sorted = false;
    }

    /// Number of samples.
    #[must_use]
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Pool another summary's samples into this one (the basis of the
    /// [`Merge`](crate::Merge) impl used when combining trial reports).
    pub fn absorb(&mut self, other: Summary) {
        self.samples.extend(other.samples);
        self.sorted = false;
    }

    /// Arithmetic mean (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
            self.sorted = true;
        }
    }

    /// p-th percentile by linear interpolation, p ∈ [0, 100].
    #[must_use]
    pub fn percentile(&mut self, p: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let n = self.samples.len();
        if n == 1 {
            return self.samples[0];
        }
        let rank = (p.clamp(0.0, 100.0) / 100.0) * (n - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        self.samples[lo] * (1.0 - frac) + self.samples[hi] * frac
    }

    /// Median.
    #[must_use]
    pub fn median(&mut self) -> f64 {
        self.percentile(50.0)
    }

    /// Minimum (0 when empty).
    #[must_use]
    pub fn min(&mut self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        self.samples[0]
    }

    /// Maximum (0 when empty).
    #[must_use]
    pub fn max(&mut self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        *self.samples.last().unwrap()
    }

    /// Sample standard deviation (0 for < 2 samples).
    #[must_use]
    pub fn stddev(&self) -> f64 {
        let n = self.samples.len();
        if n < 2 {
            return 0.0;
        }
        let m = self.mean();
        let var = self.samples.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (n - 1) as f64;
        var.sqrt()
    }

    /// Build an empirical CDF with `points` evenly spaced quantiles.
    #[must_use]
    pub fn cdf(&mut self, points: usize) -> Cdf {
        self.ensure_sorted();
        let mut pts = Vec::with_capacity(points);
        if self.samples.is_empty() {
            return Cdf { points: pts };
        }
        let n = self.samples.len();
        for i in 0..points {
            let q = (i as f64 + 1.0) / points as f64;
            let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
            pts.push((self.samples[idx], q));
        }
        Cdf { points: pts }
    }
}

/// An empirical cumulative distribution: `(value, P(X ≤ value))` points.
#[derive(Clone, Debug)]
pub struct Cdf {
    /// Sorted `(value, cumulative probability)` pairs.
    pub points: Vec<(f64, f64)>,
}

impl Cdf {
    /// Fraction of mass at or below `v` (interpolating between points).
    #[must_use]
    pub fn at(&self, v: f64) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        let mut prev = 0.0;
        for &(x, p) in &self.points {
            if v < x {
                return prev;
            }
            prev = p;
        }
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_median() {
        let mut s = Summary::new();
        s.extend([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.mean(), 2.5);
        assert_eq!(s.median(), 2.5);
        s.add(100.0);
        assert_eq!(s.median(), 3.0);
        assert_eq!(s.count(), 5);
    }

    #[test]
    fn percentiles_interpolate() {
        let mut s = Summary::new();
        s.extend([0.0, 10.0]);
        assert_eq!(s.percentile(0.0), 0.0);
        assert_eq!(s.percentile(50.0), 5.0);
        assert_eq!(s.percentile(100.0), 10.0);
        assert_eq!(s.percentile(25.0), 2.5);
    }

    #[test]
    fn empty_is_zero() {
        let mut s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.median(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.stddev(), 0.0);
    }

    #[test]
    fn stddev_known() {
        let mut s = Summary::new();
        s.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.stddev() - 2.138).abs() < 0.01);
    }

    #[test]
    fn min_max() {
        let mut s = Summary::new();
        s.extend([5.0, -1.0, 3.0]);
        assert_eq!(s.min(), -1.0);
        assert_eq!(s.max(), 5.0);
    }

    #[test]
    fn cdf_monotone_and_covers() {
        let mut s = Summary::new();
        s.extend((0..100).map(f64::from));
        let cdf = s.cdf(10);
        assert_eq!(cdf.points.len(), 10);
        let mut last = f64::MIN;
        for &(v, p) in &cdf.points {
            assert!(v >= last);
            last = v;
            assert!((0.0..=1.0).contains(&p));
        }
        assert_eq!(cdf.points.last().unwrap().1, 1.0);
        assert!(cdf.at(-1.0) < 0.2);
        assert_eq!(cdf.at(1000.0), 1.0);
    }

    #[test]
    fn single_sample() {
        let mut s = Summary::new();
        s.add(7.0);
        assert_eq!(s.median(), 7.0);
        assert_eq!(s.percentile(99.0), 7.0);
    }
}
