//! Statistics helpers shared by the Octopus evaluation harness.
//!
//! Every table and figure in the paper reduces to a handful of summary
//! shapes: means/medians (Table 3), CDFs (Fig. 7a), binned time series
//! (Figs. 3, 4, 7b, 9), rates (Table 2), and entropies (Figs. 5, 6). This
//! crate implements those reductions once, with text rendering that
//! mirrors the paper's rows/series.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod merge;
pub mod series;
pub mod summary;
pub mod table;

pub use merge::{merge_point_series, Accumulator, Merge};
pub use series::TimeSeries;
pub use summary::{Cdf, Summary};
pub use table::TextTable;

/// Shannon entropy (bits) of a discrete distribution given as
/// probabilities. Zero-probability entries contribute nothing; the input
/// need not be normalized (it is normalized internally).
#[must_use]
pub fn entropy_bits(probs: &[f64]) -> f64 {
    let total: f64 = probs.iter().filter(|p| **p > 0.0).sum();
    if total <= 0.0 {
        return 0.0;
    }
    let mut h = 0.0;
    for &p in probs {
        if p > 0.0 {
            let q = p / total;
            h -= q * q.log2();
        }
    }
    h
}

/// Entropy of a uniform distribution over `n` outcomes.
#[must_use]
pub fn uniform_entropy_bits(n: usize) -> f64 {
    if n == 0 {
        0.0
    } else {
        (n as f64).log2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_entropy() {
        assert_eq!(uniform_entropy_bits(1), 0.0);
        assert!((uniform_entropy_bits(1024) - 10.0).abs() < 1e-12);
        assert_eq!(uniform_entropy_bits(0), 0.0);
    }

    #[test]
    fn entropy_of_uniform_matches() {
        let p = vec![0.25; 4];
        assert!((entropy_bits(&p) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_unnormalized_input() {
        let p = vec![1.0, 1.0, 1.0, 1.0];
        assert!((entropy_bits(&p) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_degenerate() {
        assert_eq!(entropy_bits(&[1.0]), 0.0);
        assert_eq!(entropy_bits(&[]), 0.0);
        assert_eq!(entropy_bits(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn entropy_ignores_zeros() {
        let h = entropy_bits(&[0.5, 0.5, 0.0, 0.0]);
        assert!((h - 1.0).abs() < 1e-12);
    }
}
