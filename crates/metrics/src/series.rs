//! Binned time series, the backbone of the "X vs time" figures
//! (Figs. 3, 4, 7b, 9).

/// Events or gauge values bucketed into fixed-width time bins.
#[derive(Clone, Debug)]
pub struct TimeSeries {
    bin_width: f64,
    end: f64,
    /// Sum of values per bin.
    sums: Vec<f64>,
    /// Sample count per bin.
    counts: Vec<u64>,
}

impl TimeSeries {
    /// A series over `[0, end)` seconds with `bin_width`-second bins.
    ///
    /// # Panics
    /// Panics when `bin_width <= 0` or `end <= 0`.
    #[must_use]
    pub fn new(end: f64, bin_width: f64) -> Self {
        assert!(bin_width > 0.0 && end > 0.0, "invalid series bounds");
        let bins = (end / bin_width).ceil() as usize;
        TimeSeries {
            bin_width,
            end,
            sums: vec![0.0; bins],
            counts: vec![0; bins],
        }
    }

    /// Record `value` at time `t` (seconds). Out-of-range samples are
    /// clamped into the final bin so end-of-run events are not lost.
    pub fn record(&mut self, t: f64, value: f64) {
        if self.sums.is_empty() {
            return;
        }
        let idx = ((t / self.bin_width) as usize).min(self.sums.len() - 1);
        self.sums[idx] += value;
        self.counts[idx] += 1;
    }

    /// Record one occurrence (counting series).
    pub fn record_event(&mut self, t: f64) {
        self.record(t, 1.0);
    }

    /// Number of bins.
    #[must_use]
    pub fn bins(&self) -> usize {
        self.sums.len()
    }

    /// Bin-wise sum of another series' values and counts into this one
    /// (the basis of the [`Merge`](crate::Merge) impl used when
    /// combining trial reports).
    ///
    /// # Panics
    /// Panics when the bin layouts differ.
    pub fn absorb(&mut self, other: &TimeSeries) {
        assert!(
            self.bin_width == other.bin_width && self.sums.len() == other.sums.len(),
            "mismatched bin layout"
        );
        for (s, o) in self.sums.iter_mut().zip(&other.sums) {
            *s += o; // octolint: allow(OCT-LINT-007) -- shard series absorb in fixed shard-index order at the window barrier, so the float bin sums see one canonical operand order
        }
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
    }

    /// End of the covered range in seconds.
    #[must_use]
    pub fn end(&self) -> f64 {
        self.end
    }

    /// `(bin start time, sum)` pairs — counts per bin for event series.
    #[must_use]
    pub fn totals(&self) -> Vec<(f64, f64)> {
        self.sums
            .iter()
            .enumerate()
            .map(|(i, &s)| (i as f64 * self.bin_width, s))
            .collect()
    }

    /// `(bin start time, mean)` pairs; empty bins carry forward the last
    /// observed mean (gauge semantics — e.g. "fraction of malicious
    /// nodes" holds its value between observations).
    #[must_use]
    pub fn means_carry_forward(&self) -> Vec<(f64, f64)> {
        let mut out = Vec::with_capacity(self.sums.len());
        let mut last = 0.0;
        for i in 0..self.sums.len() {
            if self.counts[i] > 0 {
                last = self.sums[i] / self.counts[i] as f64;
            }
            out.push((i as f64 * self.bin_width, last));
        }
        out
    }

    /// Cumulative sum series `(bin start, running total)`.
    #[must_use]
    pub fn cumulative(&self) -> Vec<(f64, f64)> {
        let mut acc = 0.0;
        self.sums
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                acc += s;
                (i as f64 * self.bin_width, acc)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_and_totals() {
        let mut ts = TimeSeries::new(10.0, 2.0);
        assert_eq!(ts.bins(), 5);
        ts.record_event(0.5);
        ts.record_event(1.9);
        ts.record_event(2.0);
        let t = ts.totals();
        assert_eq!(t[0], (0.0, 2.0));
        assert_eq!(t[1], (2.0, 1.0));
    }

    #[test]
    fn out_of_range_clamped() {
        let mut ts = TimeSeries::new(10.0, 2.0);
        ts.record_event(99.0);
        assert_eq!(ts.totals()[4].1, 1.0);
    }

    #[test]
    fn means_carry_forward() {
        let mut ts = TimeSeries::new(8.0, 2.0);
        ts.record(0.0, 0.2);
        ts.record(1.0, 0.4); // bin 0 mean = 0.3
        ts.record(6.0, 0.1); // bin 3
        let m = ts.means_carry_forward();
        assert!((m[0].1 - 0.3).abs() < 1e-12);
        assert!((m[1].1 - 0.3).abs() < 1e-12, "carried forward");
        assert!((m[2].1 - 0.3).abs() < 1e-12);
        assert!((m[3].1 - 0.1).abs() < 1e-12);
    }

    #[test]
    fn cumulative_sums() {
        let mut ts = TimeSeries::new(6.0, 2.0);
        ts.record(0.0, 1.0);
        ts.record(3.0, 2.0);
        ts.record(5.0, 3.0);
        let c = ts.cumulative();
        assert_eq!(c[0].1, 1.0);
        assert_eq!(c[1].1, 3.0);
        assert_eq!(c[2].1, 6.0);
    }

    #[test]
    #[should_panic(expected = "invalid series bounds")]
    fn rejects_bad_bounds() {
        let _ = TimeSeries::new(10.0, 0.0);
    }

    #[test]
    fn fractional_bin_count_rounds_up() {
        let ts = TimeSeries::new(10.0, 3.0);
        assert_eq!(ts.bins(), 4);
    }
}
