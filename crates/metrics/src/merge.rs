//! Mergeable metric accumulation for multi-trial experiments.
//!
//! The parallel trial driver (`octopus-core::TrialRunner`) runs many
//! independent seeded simulations and needs to combine their reports
//! into one. [`Merge`] is the contract a combinable metric implements;
//! [`Accumulator`] folds a stream of them. Merging must be associative
//! and deterministic — the driver always folds in trial-index order, so
//! T trials merged on 1 thread and on N threads yield identical results.

use crate::series::TimeSeries;
use crate::summary::Summary;

/// A metric that can absorb another instance of itself.
///
/// Implementations must be associative (`(a·b)·c == a·(b·c)`) so that a
/// fold over any grouping of sub-results agrees with the sequential
/// fold; determinism then only requires folding in a fixed order.
///
/// ```
/// use octopus_metrics::{Merge, Summary};
///
/// let mut a = Summary::new();
/// a.extend([1.0, 2.0]);
/// let mut b = Summary::new();
/// b.extend([3.0, 4.0]);
/// a.merge(b); // the summary of the concatenated samples
/// assert_eq!(a.count(), 4);
/// assert_eq!(a.mean(), 2.5);
/// ```
pub trait Merge {
    /// Fold `other` into `self`.
    fn merge(&mut self, other: Self);
}

/// Folds a sequence of mergeable values, tracking how many were merged.
///
/// The trial driver collects per-trial reports through this — always in
/// submission order, so any worker count merges identically.
///
/// ```
/// use octopus_metrics::{Accumulator, Summary};
///
/// let acc: Accumulator<Summary> = (1..=3)
///     .map(|t| {
///         let mut s = Summary::new();
///         s.extend([f64::from(t)]); // one "trial result" each
///         s
///     })
///     .collect();
/// assert_eq!(acc.count(), 3);
/// let pooled = acc.into_inner().expect("three summaries folded");
/// assert_eq!(pooled.mean(), 2.0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Accumulator<T> {
    value: Option<T>,
    count: usize,
}

impl<T: Merge> Accumulator<T> {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Accumulator {
            value: None,
            count: 0,
        }
    }

    /// Fold one value in.
    pub fn push(&mut self, value: T) {
        self.count += 1;
        match &mut self.value {
            Some(acc) => acc.merge(value),
            none => *none = Some(value),
        }
    }

    /// Number of values folded so far.
    #[must_use]
    pub fn count(&self) -> usize {
        self.count
    }

    /// The merged result (`None` when nothing was pushed).
    pub fn into_inner(self) -> Option<T> {
        self.value
    }

    /// Borrow the merged result so far.
    #[must_use]
    pub fn current(&self) -> Option<&T> {
        self.value.as_ref()
    }
}

impl<T: Merge> FromIterator<T> for Accumulator<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut acc = Accumulator::new();
        for v in iter {
            acc.push(v);
        }
        acc
    }
}

/// Element-wise sum of `(t, value)` point series, in place.
///
/// Series produced by equal-duration runs align index-by-index (the
/// driver schedules measurements on a fixed grid); when lengths differ
/// (a run drained its queue early) the sum truncates to the common
/// prefix so no phantom zeros dilute later bins.
pub fn merge_point_series(acc: &mut Vec<(f64, f64)>, other: &[(f64, f64)]) {
    if acc.is_empty() {
        acc.extend_from_slice(other);
        return;
    }
    if other.is_empty() {
        return;
    }
    let common = acc.len().min(other.len());
    acc.truncate(common);
    for (a, b) in acc.iter_mut().zip(other) {
        a.1 += b.1; // octolint: allow(OCT-LINT-007) -- the driver merges trial series in fixed trial-index order (TrialRunner collects in submission order), so the float sum sees one canonical operand order
    }
}

impl Merge for Summary {
    /// Pools the sample sets (the merged summary is the summary of the
    /// concatenated samples).
    fn merge(&mut self, other: Self) {
        self.absorb(other);
    }
}

impl Merge for TimeSeries {
    /// Bin-wise sum of values and sample counts.
    ///
    /// # Panics
    /// Panics when the two series have different bin layouts — merging
    /// incompatible grids is always a harness bug.
    fn merge(&mut self, other: Self) {
        self.absorb(&other);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Count(u64);
    impl Merge for Count {
        fn merge(&mut self, other: Self) {
            self.0 += other.0;
        }
    }

    #[test]
    fn accumulator_folds_in_order() {
        let mut acc = Accumulator::new();
        assert!(acc.current().is_none());
        for i in 1..=4 {
            acc.push(Count(i));
        }
        assert_eq!(acc.count(), 4);
        assert_eq!(acc.into_inner(), Some(Count(10)));
    }

    #[test]
    fn accumulator_from_iter() {
        let acc: Accumulator<Count> = (1..=3).map(Count).collect();
        assert_eq!(acc.count(), 3);
        assert_eq!(acc.into_inner(), Some(Count(6)));
    }

    #[test]
    fn empty_accumulator_yields_none() {
        let acc: Accumulator<Count> = Accumulator::new();
        assert_eq!(acc.into_inner(), None);
    }

    #[test]
    fn point_series_sum() {
        let mut a = vec![(0.0, 1.0), (5.0, 2.0)];
        merge_point_series(&mut a, &[(0.0, 10.0), (5.0, 20.0)]);
        assert_eq!(a, vec![(0.0, 11.0), (5.0, 22.0)]);
    }

    #[test]
    fn point_series_handles_empty_and_ragged() {
        let mut a: Vec<(f64, f64)> = Vec::new();
        merge_point_series(&mut a, &[(0.0, 1.0)]);
        assert_eq!(a, vec![(0.0, 1.0)]);
        merge_point_series(&mut a, &[]);
        assert_eq!(a, vec![(0.0, 1.0)]);
        // ragged: truncates to the common prefix
        let mut b = vec![(0.0, 1.0), (5.0, 1.0), (10.0, 1.0)];
        merge_point_series(&mut b, &[(0.0, 1.0), (5.0, 1.0)]);
        assert_eq!(b, vec![(0.0, 2.0), (5.0, 2.0)]);
    }

    #[test]
    fn summary_merge_pools_samples() {
        let mut a = Summary::new();
        a.extend([1.0, 2.0]);
        let mut b = Summary::new();
        b.extend([3.0, 4.0]);
        a.merge(b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.mean(), 2.5);
        assert_eq!(a.median(), 2.5);
    }

    #[test]
    fn time_series_merge_sums_bins() {
        let mut a = TimeSeries::new(10.0, 5.0);
        a.record(1.0, 2.0);
        let mut b = TimeSeries::new(10.0, 5.0);
        b.record(1.0, 4.0);
        b.record(6.0, 1.0);
        a.merge(b);
        assert_eq!(a.totals(), vec![(0.0, 6.0), (5.0, 1.0)]);
        // means reflect the pooled counts
        assert!((a.means_carry_forward()[0].1 - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "mismatched bin layout")]
    fn time_series_merge_rejects_mismatched_grids() {
        let mut a = TimeSeries::new(10.0, 5.0);
        let b = TimeSeries::new(10.0, 2.0);
        a.merge(b);
    }
}
