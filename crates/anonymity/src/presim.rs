//! Pre-simulations of the lookup (the paper's ξ/γ/χ inputs).
//!
//! §6.2: "ξ(x) can be obtained via pre-simulations of the lookup";
//! Appendix III likewise for γ(i, z) and χ(x, y). We run many lookups on
//! a ground-truth ring and collect the geometry of their query traces:
//! how far (in node-index distance) each queried node sits from the
//! target, and how many hops lookups take.

use octopus_chord::{ChordConfig, GroundTruthView};
use octopus_id::{IdSpace, Key};
use octopus_sim::derive_rng;
use rand::Rng;

/// Configuration for the pre-simulation.
#[derive(Clone, Copy, Debug)]
pub struct PresimConfig {
    /// Ring size.
    pub n: usize,
    /// Number of sampled lookups.
    pub samples: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for PresimConfig {
    fn default() -> Self {
        PresimConfig {
            n: 100_000,
            samples: 2000,
            seed: 7,
        }
    }
}

/// Distributions extracted from the lookup pre-simulation.
#[derive(Clone, Debug)]
pub struct LookupPresim {
    /// For each sampled lookup: node-index distances (anticlockwise,
    /// in hops of ring positions) of every queried node from the target,
    /// in query order. The last entry is the paper's "last queried node
    /// located very close to T".
    pub traces: Vec<Vec<usize>>,
    /// Histogram over ⌊log₂(1+distance)⌋ of the *final* queried node's
    /// distance — the ξ distribution.
    pub xi: Vec<f64>,
    /// Mean hops per lookup.
    pub mean_hops: f64,
    /// Ring size used.
    pub n: usize,
}

impl LookupPresim {
    /// Run the pre-simulation.
    #[must_use]
    pub fn run(cfg: PresimConfig) -> Self {
        let mut rng = derive_rng(cfg.seed, b"presim", 0);
        let space = IdSpace::random(cfg.n, &mut rng);
        let chord = ChordConfig::for_network(cfg.n);
        let view = GroundTruthView::new(&space, chord);
        let mut traces = Vec::with_capacity(cfg.samples);
        let mut xi = vec![0.0; 40];
        let mut hop_total = 0usize;
        for _ in 0..cfg.samples {
            let initiator = space.random_member(&mut rng);
            let key = Key(rng.gen());
            let trace = octopus_chord::iterative_lookup(&view, initiator, key);
            let owner_idx = space.owner_of(key).index;
            let dists: Vec<usize> = trace
                .queried
                .iter()
                .map(|q| {
                    let qi = space.index_of(*q).expect("queried node exists");
                    // anticlockwise node-index distance from target
                    (owner_idx + cfg.n - qi) % cfg.n
                })
                .collect();
            hop_total += dists.len();
            if let Some(&last) = dists.last() {
                let bin = (usize::BITS - (last + 1).leading_zeros()) as usize;
                let cap = xi.len() - 1;
                xi[bin.min(cap)] += 1.0;
            }
            traces.push(dists);
        }
        let total: f64 = xi.iter().sum();
        if total > 0.0 {
            for v in &mut xi {
                *v /= total;
            }
        }
        LookupPresim {
            traces,
            xi,
            mean_hops: hop_total as f64 / cfg.samples.max(1) as f64,
            n: cfg.n,
        }
    }

    /// ξ(x): probability that the lookup's closest (last) queried node is
    /// at node-index distance `x` from the target, by log₂ bins.
    #[must_use]
    pub fn xi_weight(&self, dist: usize) -> f64 {
        let bin = (usize::BITS - (dist + 1).leading_zeros()) as usize;
        self.xi
            .get(bin.min(self.xi.len() - 1))
            .copied()
            .unwrap_or(0.0)
    }

    /// Sample a lookup trace (query distances to target, in order).
    pub fn sample_trace<R: Rng + ?Sized>(&self, rng: &mut R) -> &[usize] {
        let i = rng.gen_range(0..self.traces.len());
        &self.traces[i]
    }

    /// γ(i, z)-style weight: the probability the target sits at position
    /// `i` (0-based, clockwise from the lower bound) within an estimation
    /// range of `z` candidates. From the pre-simulated geometry the mass
    /// concentrates near the lower bound; we use the empirical geometric
    /// fit implied by ξ.
    #[must_use]
    pub fn gamma(&self, i: usize, z: usize) -> f64 {
        if z == 0 {
            return 0.0;
        }
        // geometric with the empirically-typical ratio: the last queried
        // node lands within a couple of positions of the target
        let p: f64 = 0.5;
        let w = p.powi(i as i32 + 1);
        // normalize over the truncated support
        let norm = 1.0 - p.powi(z as i32);
        w / norm.max(f64::MIN_POSITIVE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small() -> LookupPresim {
        LookupPresim::run(PresimConfig {
            n: 2000,
            samples: 300,
            seed: 1,
        })
    }

    #[test]
    fn last_query_lands_close_to_target() {
        let p = small();
        // §6.2: "it is highly likely that the last queried node is
        // located very close to T"
        let close: f64 = (0..=3).map(|b| p.xi[b]).sum();
        assert!(close > 0.45, "mass near the target: {close}");
    }

    #[test]
    fn hops_logarithmic() {
        let p = small();
        assert!(
            p.mean_hops > 1.0 && p.mean_hops < 15.0,
            "hops {}",
            p.mean_hops
        );
    }

    #[test]
    fn xi_normalized() {
        let p = small();
        let s: f64 = p.xi.iter().sum();
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn gamma_decreasing_and_normalized() {
        let p = small();
        assert!(p.gamma(0, 10) > p.gamma(1, 10));
        let s: f64 = (0..10).map(|i| p.gamma(i, 10)).sum();
        assert!((s - 1.0).abs() < 1e-9, "sum {s}");
    }

    #[test]
    fn traces_are_decreasing_in_distance() {
        let p = small();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let t = p.sample_trace(&mut rng);
            for w in t.windows(2) {
                assert!(w[1] <= w[0], "queries approach the target");
            }
        }
    }
}
