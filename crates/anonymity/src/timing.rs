//! End-to-end timing-analysis attack (paper §4.7, Table 1).
//!
//! The adversary controls the entering relay A and some exit relays Dᵢ
//! and tries to match them up by comparing each candidate pair's
//! upstream and downstream one-way latencies — which would be equal in a
//! noise-free network. Octopus defeats this by having the middle relay B
//! add a random delay up to `max_delay` (100 or 200 ms), swamping the
//! signal; jitter is min(10 ms, 10 % of latency) per \[2\].
//!
//! The attack: among all concurrent flows' (A, Dᵢ) candidate pairs, pick
//! the one minimizing |upstream − downstream|. The *error rate* is the
//! probability the picked pair is not the true one (Table 1 reports
//! ≥ 99.35 %).

use octopus_id::NodeId;
use octopus_net::{KingLikeLatency, LatencyModel};
use octopus_sim::derive_rng;
use rand::Rng;

/// Parameters for the timing experiment.
#[derive(Clone, Copy, Debug)]
pub struct TimingConfig {
    /// Network size (1 000 000 in Table 1).
    pub n: usize,
    /// Malicious fraction.
    pub f: f64,
    /// Concurrent lookup rate α.
    pub alpha: f64,
    /// Maximum random delay added at B, in ms (100 or 200 in Table 1).
    pub max_delay_ms: f64,
    /// Attack trials.
    pub trials: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for TimingConfig {
    fn default() -> Self {
        TimingConfig {
            n: 1_000_000,
            f: 0.2,
            alpha: 0.01,
            max_delay_ms: 100.0,
            trials: 300,
            seed: 21,
        }
    }
}

/// Run the attack and return its error rate.
#[must_use]
pub fn timing_attack_error_rate(cfg: &TimingConfig) -> f64 {
    let mut rng = derive_rng(cfg.seed, b"timing", cfg.max_delay_ms as u64);
    let latency = KingLikeLatency::new(octopus_sim::split_seed(cfg.seed, 3));
    // number of concurrent flows whose exits the adversary observes:
    // α·N flows, each exit malicious with probability f
    let candidates = ((cfg.n as f64 * cfg.alpha * cfg.f) as usize).clamp(2, 4000);
    let mut errors = 0usize;
    for _ in 0..cfg.trials {
        // the true flow: A → B → (C) → D with B adding U(0, max) delay in
        // the forward direction only; the adversary compares A's
        // upstream timing with each candidate D's downstream timing
        let a = NodeId(rng.gen());
        let b = NodeId(rng.gen());
        let true_d = NodeId(rng.gen());
        let fwd_delay = rng.gen::<f64>() * cfg.max_delay_ms;
        let up = latency.sample(a, b, &mut rng).as_millis_f64()
            + fwd_delay
            + latency.sample(b, true_d, &mut rng).as_millis_f64();
        let down_true = latency.sample(true_d, b, &mut rng).as_millis_f64()
            + latency.sample(b, a, &mut rng).as_millis_f64();
        // pick the candidate minimizing |up - down|
        let mut best = (f64::MAX, usize::MAX);
        let true_idx = rng.gen_range(0..candidates);
        for i in 0..candidates {
            let down = if i == true_idx {
                down_true
            } else {
                // a decoy flow's downstream latency through its own path
                let d = NodeId(rng.gen());
                let bb = NodeId(rng.gen());
                latency.sample(d, bb, &mut rng).as_millis_f64()
                    + latency.sample(bb, a, &mut rng).as_millis_f64()
            };
            let diff = (up - down).abs();
            if diff < best.0 {
                best = (diff, i);
            }
        }
        if best.1 != true_idx {
            errors += 1;
        }
    }
    errors as f64 / cfg.trials as f64
}

/// Information leaked by the attack in bits (paper §4.7: `(1−err) ·
/// log₂(N·(1−f) + N·α·f)`).
#[must_use]
pub fn timing_leak_bits(cfg: &TimingConfig, error_rate: f64) -> f64 {
    let set = cfg.n as f64 * (1.0 - cfg.f) + cfg.n as f64 * cfg.alpha * cfg.f;
    (1.0 - error_rate) * set.log2()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_delay_defeats_matching() {
        let cfg = TimingConfig {
            trials: 150,
            ..TimingConfig::default()
        };
        let err = timing_attack_error_rate(&cfg);
        assert!(err > 0.95, "Table 1 reports ≥99% error; got {err}");
    }

    #[test]
    fn more_candidates_raise_error() {
        let low = TimingConfig {
            alpha: 0.005,
            trials: 150,
            ..TimingConfig::default()
        };
        let high = TimingConfig {
            alpha: 0.05,
            trials: 150,
            ..TimingConfig::default()
        };
        assert!(timing_attack_error_rate(&high) >= timing_attack_error_rate(&low) - 0.03);
    }

    #[test]
    fn without_delay_attack_works_better() {
        let with = TimingConfig {
            trials: 150,
            ..TimingConfig::default()
        };
        let without = TimingConfig {
            max_delay_ms: 0.0,
            alpha: 0.0001, // few candidates, no delay: matching gets a chance
            trials: 150,
            ..TimingConfig::default()
        };
        let e_with = timing_attack_error_rate(&with);
        let e_without = timing_attack_error_rate(&without);
        assert!(
            e_without < e_with,
            "removing the delay must help the attack ({e_without} vs {e_with})"
        );
    }

    #[test]
    fn leak_is_fractions_of_a_bit() {
        let cfg = TimingConfig::default();
        let leak = timing_leak_bits(&cfg, 0.999);
        assert!(leak < 0.05, "paper: 0.018 bit; got {leak}");
    }
}
