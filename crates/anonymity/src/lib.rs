//! Entropy-based anonymity analysis (paper §6 and Appendices).
//!
//! The paper quantifies anonymity as Shannon entropy over the
//! adversary's posterior: `H(I) = Σ P(o)·H(I|o)` (Eq. 1), computed "using
//! probabilistic modeling with the help of simulation". This crate
//! reproduces that methodology:
//!
//! * [`presim`] — pre-simulations of the lookup on a large ring,
//!   producing the query-position distributions the paper calls ξ, γ and
//!   χ ("obtained via pre-simulations of the lookup").
//! * [`range`] — the range-estimation attack of \[38\] (Appendix III):
//!   bounding the target between the last observed query and the
//!   greedy-lookup upper bound.
//! * [`initiator`] / [`target`] — Monte-Carlo evaluation of H(I) (§6.2)
//!   and H(T) (Appendix III) for Octopus, with split queries over
//!   multiple anonymous paths and dummy queries.
//! * [`comparison`] — the same quantities for Chord, NISAN and Torsk
//!   under their respective observation models (Figs. 5(b)/6).
//! * [`timing`] — the end-to-end timing-analysis attack of §4.7
//!   (Table 1).
//!
//! Modeling notes (see DESIGN.md): relay compromise is sampled i.i.d.
//! with probability `f`; random-walk linkability of a relay to its
//! initiator is approximated as `f²` (both hops of the pair observed);
//! the dummy-filtering of Appendix III is evaluated by enumerating
//! subsets of the (small) observed query set against the paper's two
//! ordering rules. Absolute bit counts therefore differ from the paper's
//! (whose exact estimator is not fully specified), but the comparisons —
//! who leaks more, and by roughly what factor — are preserved.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod comparison;
pub mod initiator;
pub mod presim;
pub mod range;
pub mod target;
pub mod timing;

pub use comparison::{chord_entropies, nisan_entropies, torsk_entropies, SchemeEntropies};
pub use initiator::initiator_entropy;
pub use presim::{LookupPresim, PresimConfig};
pub use range::{estimate_range, RangeEstimate};
pub use target::target_entropy;
pub use timing::{timing_attack_error_rate, TimingConfig};

/// Common parameters for the anonymity Monte Carlo.
#[derive(Clone, Copy, Debug)]
pub struct AnonymityConfig {
    /// Network size (100 000 in §6).
    pub n: usize,
    /// Fraction of malicious nodes.
    pub f: f64,
    /// Concurrent lookup rate α (fraction of nodes looking up at once).
    pub alpha: f64,
    /// Dummy queries per lookup.
    pub dummies: usize,
    /// Monte-Carlo trials.
    pub trials: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for AnonymityConfig {
    fn default() -> Self {
        AnonymityConfig {
            n: 100_000,
            f: 0.2,
            alpha: 0.01,
            dummies: 6,
            trials: 400,
            seed: 42,
        }
    }
}

impl AnonymityConfig {
    /// The ideal entropy `log₂ N` (the "Ideal entropy" line of Fig. 5).
    #[must_use]
    pub fn ideal_entropy(&self) -> f64 {
        (self.n as f64).log2()
    }

    /// Entropy of the honest-node anonymity set, `log₂((1−f)·N)`.
    #[must_use]
    pub fn honest_entropy(&self) -> f64 {
        ((1.0 - self.f) * self.n as f64).max(1.0).log2()
    }

    /// Number of concurrent lookups.
    #[must_use]
    pub fn concurrent_lookups(&self) -> usize {
        ((self.alpha * self.n as f64).round() as usize).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_entropy_matches_paper_scale() {
        let cfg = AnonymityConfig::default();
        assert!((cfg.ideal_entropy() - 16.61).abs() < 0.01);
        assert!((cfg.honest_entropy() - 16.28).abs() < 0.01);
        assert_eq!(cfg.concurrent_lookups(), 1000);
    }
}
