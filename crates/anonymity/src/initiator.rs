//! Initiator anonymity H(I) for Octopus (paper §6.2, Eqs. 2–7).
//!
//! Monte-Carlo over the adversary's observations. Per trial:
//!
//! 1. With probability `f` the target is malicious and therefore
//!    *observed* (a node knows when it is a lookup target, §6.1); when T
//!    is unobserved the adversary learns nothing that links anyone
//!    (Eq. 3: `H = log₂((1−f)N)`).
//! 2. When T is observed, each query of the lookup may be observed
//!    (queried node Eᵢ or exit relay Dᵢ malicious) and *linkable to I*
//!    (compromised-bridge A+Cᵢ, or walk-linkability of the pair —
//!    approximated as f², both pair relays compromised). Queries
//!    linkable to the shared relay B become linkable transitively once
//!    any one of them is (§6.1).
//! 3. With no linkable real query, Eq. 5 mixes over whether I was
//!    observed at all; with linkable queries, Eq. 6/7 weight every
//!    concurrent lookup by ξ(minimum observed distance to T).

use octopus_sim::derive_rng;
use rand::Rng;

use crate::presim::LookupPresim;
use crate::AnonymityConfig;

/// Per-query observation sample for one lookup.
pub(crate) struct QueryObs {
    /// Node-index distance of the queried node to the target.
    pub dist: usize,
    /// Observed by the adversary.
    #[allow(dead_code)]
    pub observed: bool,
    /// Linkable to the initiator.
    pub linkable: bool,
    /// Linkable to the shared relay B.
    pub b_linkable: bool,
}

/// Sample the observation pattern of one Octopus lookup.
pub(crate) fn sample_lookup_obs<R: Rng + ?Sized>(
    trace: &[usize],
    f: f64,
    rng: &mut R,
) -> Vec<QueryObs> {
    let a_mal = rng.gen::<f64>() < f;
    let b_mal = rng.gen::<f64>() < f;
    let mut obs: Vec<QueryObs> = trace
        .iter()
        .map(|&dist| {
            let ci_mal = rng.gen::<f64>() < f;
            let di_mal = rng.gen::<f64>() < f;
            let ei_mal = rng.gen::<f64>() < f;
            let observed = ei_mal || di_mal;
            // bridge to I through A—Cᵢ, or the pair's selection walk was
            // itself compromised end-to-end (≈ f²)
            let walk_linked = di_mal && rng.gen::<f64>() < f * f;
            let linkable = observed && ((a_mal && ci_mal) || walk_linked);
            let b_linkable = observed && b_mal && ci_mal;
            QueryObs {
                dist,
                observed,
                linkable,
                b_linkable,
            }
        })
        .collect();
    // §6.1: if any query is linkable to both I and B, every query
    // linkable to B becomes linkable to I
    if obs.iter().any(|q| q.linkable && q.b_linkable) {
        for q in &mut obs {
            if q.b_linkable {
                q.linkable = true;
            }
        }
    }
    obs
}

/// Probability one query of a random lookup is linkable to its initiator
/// (used to size Ψˡ, the set of concurrent lookups with linkable
/// queries).
pub(crate) fn linkable_query_prob(f: f64) -> f64 {
    let observed = 1.0 - (1.0 - f) * (1.0 - f);
    observed * (f * f + f * f * f - f * f * f * f).max(f * f * (1.0 - 0.5 * f))
}

/// Compute H(I) in bits.
#[must_use]
pub fn initiator_entropy(cfg: &AnonymityConfig, presim: &LookupPresim) -> f64 {
    let mut rng = derive_rng(cfg.seed, b"h_i", cfg.dummies as u64);
    let f = cfg.f;
    let mut total = 0.0;
    let q_link = linkable_query_prob(f);
    for _ in 0..cfg.trials {
        // 1. is the target observed?
        if rng.gen::<f64>() >= f {
            total += cfg.honest_entropy(); // Eq. 3
            continue;
        }
        // 2. observation pattern of ψ_T
        let trace = presim.sample_trace(&mut rng);
        let obs = sample_lookup_obs(trace, f, &mut rng);
        let linkable: Vec<&QueryObs> = obs.iter().filter(|q| q.linkable).collect();
        if linkable.is_empty() {
            // Eq. 5: no linkable query — I may still be observed as *an*
            // initiator somewhere (entering relay A, or its walks)
            let p_i_obs = f + (1.0 - f) * f * f;
            let observed_honest_initiators =
                (cfg.concurrent_lookups() as f64 * (1.0 - f) * p_i_obs).max(1.0);
            total += p_i_obs * observed_honest_initiators.log2()
                + (1.0 - p_i_obs) * cfg.honest_entropy();
            continue;
        }
        // Eq. 6/7: weight concurrent lookups by ξ(min linkable distance)
        let own_min = linkable.iter().map(|q| q.dist).min().expect("non-empty");
        let mut weights = vec![presim.xi_weight(own_min).max(1e-12)];
        let p_lookup_linkable = 1.0 - (1.0 - q_link).powf(presim.mean_hops);
        for _ in 1..cfg.concurrent_lookups() {
            if rng.gen::<f64>() < p_lookup_linkable {
                // another lookup's linkable queries sit at an unrelated
                // ring position relative to T
                let d = rng.gen_range(0..cfg.n);
                weights.push(presim.xi_weight(d).max(1e-12));
            }
        }
        total += octopus_metrics::entropy_bits(&weights);
    }
    total / cfg.trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presim::PresimConfig;

    fn presim() -> LookupPresim {
        LookupPresim::run(PresimConfig {
            n: 5000,
            samples: 400,
            seed: 2,
        })
    }

    fn cfg(f: f64, dummies: usize) -> AnonymityConfig {
        AnonymityConfig {
            n: 5000,
            f,
            alpha: 0.01,
            dummies,
            trials: 300,
            seed: 9,
        }
    }

    #[test]
    fn near_ideal_at_zero_adversary() {
        let p = presim();
        let c = cfg(0.0, 6);
        let h = initiator_entropy(&c, &p);
        assert!(
            (h - c.ideal_entropy()).abs() < 0.2,
            "no adversary → no leak ({h} vs {})",
            c.ideal_entropy()
        );
    }

    #[test]
    fn leak_grows_with_f_but_stays_small() {
        let p = presim();
        let h10 = initiator_entropy(&cfg(0.10, 6), &p);
        let h20 = initiator_entropy(&cfg(0.20, 6), &p);
        assert!(
            h20 <= h10 + 0.05,
            "more adversaries leak more ({h10} → {h20})"
        );
        let leak = cfg(0.20, 6).ideal_entropy() - h20;
        assert!(leak < 2.5, "Octopus H(I) leak must stay small (got {leak})");
    }

    #[test]
    fn linkable_prob_monotone() {
        assert!(linkable_query_prob(0.2) > linkable_query_prob(0.1));
        assert!(linkable_query_prob(0.0) == 0.0);
    }
}
