//! Target anonymity H(T) for Octopus (paper Appendix III, Eqs. 8–21).
//!
//! Monte-Carlo per trial:
//!
//! 1. The adversary must observe the initiator first (Eq. 8's `on`
//!    class): unobserved I → maximum entropy `log₂ N`.
//! 2. With linkable queries (class `Ol`), the adversary runs the
//!    range-estimation attack — but dummy queries contaminate the
//!    observation: every subset of the linkable queries that passes the
//!    temporal/positional filtering rules is a candidate basis for the
//!    range, and only one of them is the true `Rˡ_I`. The posterior
//!    spreads over all surviving ranges (Eqs. 11–13).
//! 3. With no linkable query (class `Od`), observations cannot be
//!    grouped; the entropy is near `Hm` (Eq. 10), the mix over "target
//!    is one of the observed malicious targets" vs "any honest node".

use octopus_sim::derive_rng;
use rand::Rng;

use crate::initiator::{linkable_query_prob, sample_lookup_obs};
use crate::presim::LookupPresim;
use crate::range::estimate_range;
use crate::AnonymityConfig;

/// One linkable observation: position and (hidden) dummy flag, plus the
/// observation's apparent time.
struct LinkObs {
    dist: usize,
    dummy: bool,
    time: f64,
}

/// Eq. 10: entropy when linkable queries carry no target information.
fn h_m(cfg: &AnonymityConfig) -> f64 {
    let mal_targets = (cfg.alpha * cfg.n as f64 * cfg.f).max(1.0);
    (1.0 - cfg.f) * cfg.honest_entropy() + cfg.f * mal_targets.log2()
}

/// Compute H(T) in bits.
#[must_use]
pub fn target_entropy(cfg: &AnonymityConfig, presim: &LookupPresim) -> f64 {
    let mut rng = derive_rng(cfg.seed, b"h_t", cfg.dummies as u64);
    let f = cfg.f;
    let mut total = 0.0;
    for _ in 0..cfg.trials {
        // 1. precondition: the initiator must be observed
        let p_i_obs = f + (1.0 - f) * f * f;
        if rng.gen::<f64>() >= p_i_obs {
            total += (cfg.n as f64).log2();
            continue;
        }
        // 2. observations of ψ_I: real queries plus dummies
        let trace = presim.sample_trace(&mut rng);
        let obs = sample_lookup_obs(trace, f, &mut rng);
        let mut linkable: Vec<LinkObs> = obs
            .iter()
            .enumerate()
            .filter(|(_, q)| q.linkable)
            .map(|(i, q)| LinkObs {
                dist: q.dist,
                dummy: false,
                time: i as f64,
            })
            .collect();
        // dummy queries go to random plausible positions over their own
        // anonymous paths, at arbitrary times within the lookup (§4.2)
        for _ in 0..cfg.dummies {
            let d_obs = sample_lookup_obs(&[rng.gen_range(0..cfg.n)], f, &mut rng);
            if d_obs[0].linkable {
                linkable.push(LinkObs {
                    dist: d_obs[0].dist,
                    dummy: true,
                    time: rng.gen::<f64>() * trace.len().max(1) as f64,
                });
            }
        }
        let real_count = linkable.iter().filter(|o| !o.dummy).count();
        if linkable.is_empty() || real_count == 0 {
            // class Od / all-dummies (Eq. 9's Rˡ_I = ∅ branch)
            total += h_m(cfg);
            continue;
        }
        // 3. range estimation over every filter-surviving subset
        total += subset_range_entropy(cfg, presim, &linkable);
    }
    let _ = linkable_query_prob(f);
    total / cfg.trials as f64
}

/// Enumerate subsets of the linkable observations that pass Appendix
/// III's filtering rules and spread the posterior over their estimation
/// ranges.
fn subset_range_entropy(cfg: &AnonymityConfig, presim: &LookupPresim, obs: &[LinkObs]) -> f64 {
    let m = obs.len().min(10); // 2^10 subsets at most
    let mut node_probs: std::collections::HashMap<usize, f64> = std::collections::HashMap::new();
    let mut passing = 0u32;
    for mask in 1u32..(1 << m) {
        let subset: Vec<&LinkObs> = (0..m)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| &obs[i])
            .collect();
        // filtering rule: ordered by time, positions must strictly
        // approach the target (distances strictly decreasing) — the
        // signature of a real greedy lookup
        let mut by_time: Vec<&&LinkObs> = subset.iter().collect();
        by_time.sort_by(|a, b| a.time.partial_cmp(&b.time).expect("no NaN"));
        let approaches = by_time.windows(2).all(|w| w[1].dist < w[0].dist);
        if !approaches {
            continue;
        }
        passing += 1;
        let dists: Vec<usize> = subset.iter().map(|o| o.dist).collect();
        if let Some(range) = estimate_range(&dists, presim.mean_hops) {
            let closest = *dists.iter().min().expect("non-empty");
            let width = range.width.min(cfg.n);
            for i in 0..width.min(256) {
                // node at position i past the closest observed query;
                // key candidates indexed relative to the true target:
                // candidate index = (closest - 1 - i) behind the target
                let pos = (closest as i64 - 1 - i as i64).rem_euclid(cfg.n as i64) as usize;
                *node_probs.entry(pos).or_default() += presim.gamma(i, width);
            }
        }
    }
    if passing == 0 || node_probs.is_empty() {
        return h_m(cfg);
    }
    let probs: Vec<f64> = node_probs.values().copied().collect();
    octopus_metrics::entropy_bits(&probs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presim::PresimConfig;

    fn presim() -> LookupPresim {
        LookupPresim::run(PresimConfig {
            n: 5000,
            samples: 400,
            seed: 3,
        })
    }

    fn cfg(f: f64, dummies: usize) -> AnonymityConfig {
        AnonymityConfig {
            n: 5000,
            f,
            alpha: 0.01,
            dummies,
            trials: 300,
            seed: 10,
        }
    }

    #[test]
    fn near_ideal_without_adversary() {
        let p = presim();
        let c = cfg(0.0, 6);
        let h = target_entropy(&c, &p);
        assert!((h - c.ideal_entropy()).abs() < 0.2, "got {h}");
    }

    #[test]
    fn dummies_improve_target_anonymity() {
        // §6.3: "The anonymity grows with more added dummy queries."
        let p = presim();
        let h0 = target_entropy(&cfg(0.2, 0), &p);
        let h6 = target_entropy(&cfg(0.2, 6), &p);
        assert!(
            h6 >= h0 - 0.05,
            "dummies must not hurt target anonymity ({h0} → {h6})"
        );
    }

    #[test]
    fn leak_bounded() {
        let p = presim();
        let c = cfg(0.2, 6);
        let h = target_entropy(&c, &p);
        let leak = c.ideal_entropy() - h;
        assert!(leak < 3.0, "Octopus H(T) leak must stay small (got {leak})");
        assert!(leak >= 0.0);
    }
}
