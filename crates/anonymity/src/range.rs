//! The range-estimation attack of \[38\] (paper Appendix III).
//!
//! Given the ring positions of the queries an adversary observed from
//! one lookup (as node-index distances to the — unknown — target), the
//! attack bounds the target's location: the last observed query is a
//! lower bound (nodes past the target are never queried), and replaying
//! the greedy rule between observed queries yields an upper bound.
//!
//! We work in node-index space: an estimate is "the target lies within
//! the `width` nodes following the closest observed query".

/// An estimated range for the target.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RangeEstimate {
    /// Node-index distance from the closest observed query to the start
    /// of the range (always 1: the next node after it).
    pub offset: usize,
    /// Number of candidate nodes in the range.
    pub width: usize,
}

/// Estimate the target range from observed query distances (node-index
/// distances to the true target, unknown to the adversary — used here to
/// size the range the adversary would derive from positions alone).
///
/// With two or more observed queries the greedy-halving structure lets
/// the adversary cap the remaining distance at roughly the last *gap*;
/// with one query only the node density bounds the guess (the paper: use
/// the successor/predecessor of the single query).
#[must_use]
pub fn estimate_range(observed: &[usize], mean_hops: f64) -> Option<RangeEstimate> {
    if observed.is_empty() {
        return None;
    }
    let closest = *observed.iter().min().expect("non-empty");
    if observed.len() >= 2 {
        let mut sorted: Vec<usize> = observed.to_vec();
        sorted.sort_unstable();
        // the upper bound comes from the second-closest query: the greedy
        // lookup from there would overshoot by at most the gap it closed
        let gap = sorted[1] - sorted[0];
        let width = (closest + gap.max(1)).min(closest * 2 + 2);
        Some(RangeEstimate {
            offset: 1,
            width: width.max(1),
        })
    } else {
        // single query: the remaining distance is distributed like a
        // full lookup tail — bound it by the typical per-hop halving
        let width = (closest * 2 + 2) + mean_hops as usize;
        Some(RangeEstimate { offset: 1, width })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_without_observations() {
        assert_eq!(estimate_range(&[], 7.0), None);
    }

    #[test]
    fn closer_queries_give_tighter_ranges() {
        let near = estimate_range(&[1, 9], 7.0).unwrap();
        let far = estimate_range(&[40, 90], 7.0).unwrap();
        assert!(near.width < far.width);
    }

    #[test]
    fn range_always_contains_target_position() {
        // the true target is at distance `closest` past the closest
        // query, i.e. within [offset, offset+width)
        for obs in [&[3usize, 20][..], &[1, 2], &[15, 40, 90]] {
            let r = estimate_range(obs, 7.0).unwrap();
            let closest = *obs.iter().min().unwrap();
            assert!(
                closest >= r.offset - 1 && closest <= r.width + r.offset,
                "target at {closest} outside range {r:?}"
            );
        }
    }

    #[test]
    fn single_query_is_looser() {
        let one = estimate_range(&[5], 7.0).unwrap();
        let two = estimate_range(&[5, 9], 7.0).unwrap();
        assert!(one.width >= two.width);
    }
}
