//! H(I)/H(T) for the comparison schemes (Figs. 5(b) and 6).
//!
//! Each scheme has its own observation model:
//!
//! * **Chord** (recursive lookup): the initiator is seen only by its
//!   first hop, but the lookup key travels in the clear — any malicious
//!   node on the path learns the target outright.
//! * **NISAN** (iterative, whole-fingertable): the key is hidden, but the
//!   initiator contacts every hop directly, and the query *positions*
//!   feed the range-estimation attack.
//! * **Torsk** (buddy proxy): the initiator hides behind the buddy, but
//!   the buddy's lookup reveals the key; linking I to the lookup needs a
//!   compromised buddy or walk tail.

use octopus_sim::derive_rng;
use rand::Rng;

use crate::presim::LookupPresim;
use crate::range::estimate_range;
use crate::AnonymityConfig;

/// A scheme's measured entropies.
#[derive(Clone, Copy, Debug)]
pub struct SchemeEntropies {
    /// Initiator anonymity in bits.
    pub h_i: f64,
    /// Target anonymity in bits.
    pub h_t: f64,
}

fn range_entropy(cfg: &AnonymityConfig, presim: &LookupPresim, observed: &[usize]) -> f64 {
    match estimate_range(observed, presim.mean_hops) {
        Some(r) => {
            let width = r.width.clamp(1, cfg.n);
            let probs: Vec<f64> = (0..width.min(512))
                .map(|i| presim.gamma(i, width))
                .collect();
            octopus_metrics::entropy_bits(&probs)
        }
        None => (cfg.n as f64).log2(),
    }
}

/// Chord \[34\] under a recursive lookup.
#[must_use]
pub fn chord_entropies(cfg: &AnonymityConfig, presim: &LookupPresim) -> SchemeEntropies {
    let mut rng = derive_rng(cfg.seed, b"cmp-chord", 0);
    let f = cfg.f;
    let (mut hi, mut ht) = (0.0, 0.0);
    for _ in 0..cfg.trials {
        let trace = presim.sample_trace(&mut rng);
        let key_seen = trace.iter().any(|_| rng.gen::<f64>() < f);
        let t_mal = rng.gen::<f64>() < f;
        let t_observed = key_seen || t_mal;
        let first_hop_mal = rng.gen::<f64>() < f;
        // H(I): useless unless T observed; I exposed only to its first hop
        hi += if !t_observed {
            cfg.honest_entropy()
        } else if first_hop_mal {
            0.0
        } else {
            cfg.honest_entropy()
        };
        // H(T): useless unless I observed (first hop); key travels in clear
        ht += if !first_hop_mal {
            (cfg.n as f64).log2()
        } else if key_seen {
            0.0
        } else {
            cfg.honest_entropy()
        };
    }
    SchemeEntropies {
        h_i: hi / cfg.trials as f64,
        h_t: ht / cfg.trials as f64,
    }
}

/// NISAN \[28\].
#[must_use]
pub fn nisan_entropies(cfg: &AnonymityConfig, presim: &LookupPresim) -> SchemeEntropies {
    let mut rng = derive_rng(cfg.seed, b"cmp-nisan", 0);
    let f = cfg.f;
    let (mut hi, mut ht) = (0.0, 0.0);
    for _ in 0..cfg.trials {
        let trace = presim.sample_trace(&mut rng);
        let observed: Vec<usize> = trace
            .iter()
            .copied()
            .filter(|_| rng.gen::<f64>() < f)
            .collect();
        let i_observed = !observed.is_empty(); // direct contact exposes I
        let t_mal = rng.gen::<f64>() < f;
        // H(I): the key is hidden, so T is observed only when T itself is
        // malicious (or the range estimate pins it — folded into H(T))
        hi += if !t_mal {
            cfg.honest_entropy()
        } else if i_observed {
            0.0
        } else {
            cfg.honest_entropy()
        };
        // H(T): given I observed, the range-estimation attack narrows T
        // using *all* observed queries (single path, no dummies — the
        // attack of [38] at full strength)
        ht += if !i_observed {
            (cfg.n as f64).log2()
        } else {
            range_entropy(cfg, presim, &observed)
        };
    }
    SchemeEntropies {
        h_i: hi / cfg.trials as f64,
        h_t: ht / cfg.trials as f64,
    }
}

/// Torsk \[20\].
#[must_use]
pub fn torsk_entropies(cfg: &AnonymityConfig, presim: &LookupPresim) -> SchemeEntropies {
    let mut rng = derive_rng(cfg.seed, b"cmp-torsk", 0);
    let f = cfg.f;
    let (mut hi, mut ht) = (0.0, 0.0);
    for _ in 0..cfg.trials {
        let trace = presim.sample_trace(&mut rng);
        let key_seen = trace.iter().any(|_| rng.gen::<f64>() < f);
        let t_mal = rng.gen::<f64>() < f;
        let t_observed = key_seen || t_mal;
        // linking I to its buddy needs the buddy or the walk tail
        let buddy_mal = rng.gen::<f64>() < f;
        let walk_tail_mal = rng.gen::<f64>() < f;
        let i_linked = buddy_mal || walk_tail_mal;
        hi += if !t_observed {
            cfg.honest_entropy()
        } else if i_linked {
            0.0
        } else {
            cfg.honest_entropy()
        };
        // H(T): the secret-buddy mechanism unlinks I from T, but T itself
        // is exposed by the buddy's plain lookup (the relay-exhaustion
        // weakness, §6.3)
        ht += if !i_linked {
            (cfg.n as f64).log2()
        } else if key_seen {
            0.0
        } else {
            cfg.honest_entropy()
        };
    }
    SchemeEntropies {
        h_i: hi / cfg.trials as f64,
        h_t: ht / cfg.trials as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presim::PresimConfig;
    use crate::{initiator_entropy, target_entropy};

    fn presim() -> LookupPresim {
        LookupPresim::run(PresimConfig {
            n: 5000,
            samples: 400,
            seed: 4,
        })
    }

    fn cfg() -> AnonymityConfig {
        AnonymityConfig {
            n: 5000,
            f: 0.2,
            alpha: 0.01,
            dummies: 6,
            trials: 400,
            seed: 11,
        }
    }

    #[test]
    fn octopus_beats_all_baselines_on_initiator_anonymity() {
        let p = presim();
        let c = cfg();
        let oct = initiator_entropy(&c, &p);
        let chord = chord_entropies(&c, &p);
        let nisan = nisan_entropies(&c, &p);
        let torsk = torsk_entropies(&c, &p);
        // Fig. 5(b): Octopus closest to ideal; Chord worst
        assert!(oct > nisan.h_i, "Octopus {oct} vs NISAN {}", nisan.h_i);
        assert!(oct > torsk.h_i, "Octopus {oct} vs Torsk {}", torsk.h_i);
        assert!(oct > chord.h_i, "Octopus {oct} vs Chord {}", chord.h_i);
        assert!(nisan.h_i > chord.h_i, "NISAN above Chord");
    }

    #[test]
    fn octopus_beats_all_baselines_on_target_anonymity() {
        let p = presim();
        let c = cfg();
        let oct = target_entropy(&c, &p);
        let chord = chord_entropies(&c, &p);
        let nisan = nisan_entropies(&c, &p);
        let torsk = torsk_entropies(&c, &p);
        // Fig. 6: NISAN worst (full-strength range estimation)
        assert!(oct > nisan.h_t, "Octopus {oct} vs NISAN {}", nisan.h_t);
        assert!(oct > torsk.h_t, "Octopus {oct} vs Torsk {}", torsk.h_t);
        assert!(
            nisan.h_t < chord.h_t && nisan.h_t < torsk.h_t,
            "NISAN's single-path range estimation leaks the most"
        );
    }

    #[test]
    fn octopus_leak_factor_vs_nisan() {
        // the headline: Octopus leaks several times less than NISAN/Torsk
        let p = presim();
        let c = cfg();
        let ideal = c.ideal_entropy();
        let leak_oct = (ideal - initiator_entropy(&c, &p)).max(0.01);
        let leak_nisan = (ideal - nisan_entropies(&c, &p).h_i).max(0.01);
        // at the test's small scale (N = 5000) the separation compresses;
        // the full-scale bench (N = 100 000) reproduces the paper's 4-6×
        assert!(
            leak_nisan / leak_oct > 1.5,
            "NISAN must leak more than Octopus ({leak_nisan} vs {leak_oct})"
        );
    }
}
