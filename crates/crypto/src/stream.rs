//! A CTR-mode stream cipher built on SHA-256.
//!
//! The paper encrypts onion layers with AES-128 (footnote 4). We
//! substitute a hash-counter keystream: `block_i = SHA256(key ‖ nonce ‖
//! i)`, XORed into the data. Like any stream cipher, encryption and
//! decryption are the same operation and the cipher is length-preserving,
//! which is what the onion construction relies on. (Toy cipher — see the
//! crate-level warning.)

use crate::sha256::Sha256;

/// A keyed stream cipher instance.
///
/// ```
/// use octopus_crypto::StreamCipher;
/// let c = StreamCipher::new(b"key", 42);
/// let mut data = *b"secret lookup query";
/// c.apply(&mut data);
/// assert_ne!(&data, b"secret lookup query");
/// c.apply(&mut data); // XOR stream is an involution
/// assert_eq!(&data, b"secret lookup query");
/// ```
#[derive(Clone)]
pub struct StreamCipher {
    key: Vec<u8>,
    nonce: u64,
}

impl StreamCipher {
    /// Create a cipher from key material and a nonce. The nonce must be
    /// unique per message under one key (callers use a fresh random nonce
    /// or a message sequence number).
    #[must_use]
    pub fn new(key: &[u8], nonce: u64) -> Self {
        StreamCipher {
            key: key.to_vec(),
            nonce,
        }
    }

    /// XOR the keystream into `data` in place (encrypts or decrypts).
    pub fn apply(&self, data: &mut [u8]) {
        for (counter, chunk) in data.chunks_mut(32).enumerate() {
            let block = Sha256::new()
                .chain(&self.key)
                .chain(&self.nonce.to_be_bytes())
                .chain(&(counter as u64).to_be_bytes())
                .finalize();
            for (b, k) in chunk.iter_mut().zip(block.0.iter()) {
                *b ^= k;
            }
        }
    }

    /// Convenience: encrypt a copy.
    #[must_use]
    pub fn encrypt(&self, data: &[u8]) -> Vec<u8> {
        let mut out = data.to_vec();
        self.apply(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let c = StreamCipher::new(b"octopus key", 7);
        let msg = b"the quick brown fox jumps over the lazy dog".to_vec();
        let ct = c.encrypt(&msg);
        assert_ne!(ct, msg);
        assert_eq!(c.encrypt(&ct), msg);
    }

    #[test]
    fn nonce_separates_streams() {
        let msg = vec![0u8; 64];
        let a = StreamCipher::new(b"k", 1).encrypt(&msg);
        let b = StreamCipher::new(b"k", 2).encrypt(&msg);
        assert_ne!(a, b);
    }

    #[test]
    fn key_separates_streams() {
        let msg = vec![0u8; 64];
        let a = StreamCipher::new(b"k1", 1).encrypt(&msg);
        let b = StreamCipher::new(b"k2", 1).encrypt(&msg);
        assert_ne!(a, b);
    }

    #[test]
    fn length_preserving_all_sizes() {
        let c = StreamCipher::new(b"k", 3);
        for n in [0usize, 1, 31, 32, 33, 64, 100] {
            let msg = vec![0xabu8; n];
            let ct = c.encrypt(&msg);
            assert_eq!(ct.len(), n);
            assert_eq!(c.encrypt(&ct), msg);
        }
    }

    #[test]
    fn empty_is_noop() {
        let c = StreamCipher::new(b"k", 0);
        let mut data: [u8; 0] = [];
        c.apply(&mut data);
    }
}
