//! Cryptographic substrate for Octopus, built from scratch.
//!
//! The paper (§4, footnote 4) assumes three primitives:
//!
//! 1. **Signatures with certificates** — every routing table
//!    (fingertable plus successor list) is signed and timestamped by its
//!    owner so that
//!    manipulated tables become non-repudiation proofs the CA can verify
//!    (§4.3–4.5). The paper uses ECDSA + X.509; we implement RSA with a
//!    64-bit modulus ([`rsa`]): *real* sign/verify semantics (hash,
//!    modular exponentiation, key pairs) that are functionally faithful
//!    but deliberately toy-sized. DESIGN.md records this substitution;
//!    the bandwidth model uses the paper's byte counts, not ours.
//! 2. **Onion encryption** — queries are relayed over anonymous paths
//!    with layered encryption (§4.1). The paper uses AES-128; we build a
//!    CTR-mode stream cipher over our SHA-256 ([`stream`]) and layered
//!    wrapping ([`onion`]).
//! 3. **A hash** mapping certificates to ring positions and keys to the
//!    key space ([`sha256`](mod@sha256)).
//!
//! Everything here is `#![forbid(unsafe_code)]`, dependency-free (beyond
//! `rand` for keygen), and test-vectored where vectors exist (SHA-256,
//! HMAC).
//!
//! **Do not use this crate for real-world security** — the RSA modulus is
//! 64 bits and the cipher is home-grown. It exists so the reproduced
//! protocols exercise true sign/verify/encrypt code paths.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cert;
pub mod hmac;
pub mod merkle;
pub mod onion;
pub mod rsa;
pub mod sha256;
pub mod stream;

pub use cert::{Certificate, CertificateAuthority, CertificateError, RevocationList};
pub use hmac::hmac_sha256;
pub use merkle::MerkleTree;
pub use onion::{OnionError, OnionLayer};
pub use rsa::{KeyPair, PublicKey, Signature, SignatureError};
pub use sha256::{sha256, Digest, Sha256};
pub use stream::StreamCipher;

/// Derive a 64-bit ring position from arbitrary bytes (used to map
/// certificates and lookup keys onto the Chord ring).
#[must_use]
pub fn ring_position(bytes: &[u8]) -> u64 {
    let d = sha256(bytes);
    u64::from_be_bytes(d.0[..8].try_into().expect("digest has 32 bytes"))
}
