//! HMAC-SHA-256 (RFC 2104), used to derive per-hop onion keys from a
//! shared secret and to key the stream cipher.

use crate::sha256::{Digest, Sha256};

const BLOCK: usize = 64;

/// Compute `HMAC-SHA256(key, message)`.
#[must_use]
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> Digest {
    let mut k = [0u8; BLOCK];
    if key.len() > BLOCK {
        let d = Sha256::new().chain(key).finalize();
        k[..32].copy_from_slice(&d.0);
    } else {
        k[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; BLOCK];
    let mut opad = [0x5cu8; BLOCK];
    for i in 0..BLOCK {
        ipad[i] ^= k[i];
        opad[i] ^= k[i];
    }
    let inner = Sha256::new().chain(&ipad).chain(message).finalize();
    Sha256::new().chain(&opad).chain(&inner.0).finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    // RFC 4231 test vectors.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        let d = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            d.to_hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case2() {
        let d = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            d.to_hex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case3() {
        let key = [0xaau8; 20];
        let msg = [0xddu8; 50];
        let d = hmac_sha256(&key, &msg);
        assert_eq!(
            d.to_hex(),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_long_key() {
        // 131-byte key forces the hash-the-key path
        let key = [0xaau8; 131];
        let d = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            d.to_hex(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn different_keys_differ() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
        assert_ne!(hmac_sha256(b"k", b"m1"), hmac_sha256(b"k", b"m2"));
    }
}
