//! A binary Merkle hash tree.
//!
//! Used to commit to the certificate revocation list so nodes can check
//! membership with log-size proofs, following the Merkle-hash-tree CRL
//! design the paper cites (\[25\] in the bibliography).

use crate::sha256::{sha256, Digest, Sha256};

/// Domain-separation prefixes so a leaf can never be confused with an
/// interior node (second-preimage hardening).
const LEAF_PREFIX: u8 = 0x00;
const NODE_PREFIX: u8 = 0x01;

/// A Merkle tree over a list of byte-string leaves.
#[derive(Clone, Debug)]
pub struct MerkleTree {
    /// levels\[0\] is the leaf level; the last level has exactly one root.
    levels: Vec<Vec<Digest>>,
}

/// A membership proof: sibling hashes from leaf to root with direction
/// bits (`true` = sibling is on the right).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MerkleProof {
    /// Index of the proven leaf.
    pub index: usize,
    /// (sibling digest, sibling-is-right) pairs bottom-up.
    pub path: Vec<(Digest, bool)>,
}

fn hash_leaf(data: &[u8]) -> Digest {
    Sha256::new().chain(&[LEAF_PREFIX]).chain(data).finalize()
}

fn hash_node(l: &Digest, r: &Digest) -> Digest {
    Sha256::new()
        .chain(&[NODE_PREFIX])
        .chain(&l.0)
        .chain(&r.0)
        .finalize()
}

impl MerkleTree {
    /// Build a tree over `leaves`. An empty list yields the hash of the
    /// empty string as root (a distinguished "empty" commitment).
    #[must_use]
    pub fn build<T: AsRef<[u8]>>(leaves: &[T]) -> Self {
        if leaves.is_empty() {
            return MerkleTree {
                levels: vec![vec![sha256(b"")]],
            };
        }
        let mut levels = Vec::new();
        let mut cur: Vec<Digest> = leaves.iter().map(|l| hash_leaf(l.as_ref())).collect();
        levels.push(cur.clone());
        while cur.len() > 1 {
            let mut next = Vec::with_capacity(cur.len().div_ceil(2));
            for pair in cur.chunks(2) {
                let combined = if pair.len() == 2 {
                    hash_node(&pair[0], &pair[1])
                } else {
                    // odd node is promoted by hashing with itself
                    hash_node(&pair[0], &pair[0])
                };
                next.push(combined);
            }
            levels.push(next.clone());
            cur = next;
        }
        MerkleTree { levels }
    }

    /// The root commitment.
    #[must_use]
    pub fn root(&self) -> Digest {
        *self
            .levels
            .last()
            .and_then(|l| l.first())
            .expect("tree always has a root")
    }

    /// Number of leaves.
    #[must_use]
    pub fn leaf_count(&self) -> usize {
        if self.levels.len() == 1 && self.levels[0].len() == 1 {
            // could be the empty tree; callers don't rely on this case
            1
        } else {
            self.levels[0].len()
        }
    }

    /// Produce a membership proof for leaf `index`.
    ///
    /// # Panics
    /// Panics when `index` is out of range.
    #[must_use]
    pub fn prove(&self, index: usize) -> MerkleProof {
        assert!(index < self.levels[0].len(), "leaf index out of range");
        let mut path = Vec::new();
        let mut i = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling = if i % 2 == 0 {
                // sibling on the right (or self-pair at odd tail)
                let s = if i + 1 < level.len() {
                    level[i + 1]
                } else {
                    level[i]
                };
                (s, true)
            } else {
                (level[i - 1], false)
            };
            path.push(sibling);
            i /= 2;
        }
        MerkleProof { index, path }
    }
}

impl MerkleProof {
    /// Verify that `leaf` is committed under `root`.
    #[must_use]
    pub fn verify(&self, leaf: &[u8], root: Digest) -> bool {
        let mut acc = hash_leaf(leaf);
        for (sib, right) in &self.path {
            acc = if *right {
                hash_node(&acc, sib)
            } else {
                hash_node(sib, &acc)
            };
        }
        acc == root
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_leaf() {
        let t = MerkleTree::build(&[b"a"]);
        let p = t.prove(0);
        assert!(p.verify(b"a", t.root()));
        assert!(!p.verify(b"b", t.root()));
    }

    #[test]
    fn power_of_two_leaves() {
        let leaves: Vec<Vec<u8>> = (0..8u8).map(|i| vec![i]).collect();
        let t = MerkleTree::build(&leaves);
        for (i, leaf) in leaves.iter().enumerate() {
            assert!(t.prove(i).verify(leaf, t.root()), "leaf {i}");
        }
    }

    #[test]
    fn odd_leaf_counts() {
        for n in [1usize, 3, 5, 7, 9, 13] {
            let leaves: Vec<Vec<u8>> = (0..n as u8).map(|i| vec![i]).collect();
            let t = MerkleTree::build(&leaves);
            for (i, leaf) in leaves.iter().enumerate() {
                assert!(t.prove(i).verify(leaf, t.root()), "n={n} leaf {i}");
            }
        }
    }

    #[test]
    fn wrong_leaf_rejected() {
        let leaves = [b"x".to_vec(), b"y".to_vec(), b"z".to_vec()];
        let t = MerkleTree::build(&leaves);
        let p = t.prove(1);
        assert!(!p.verify(b"x", t.root()));
        assert!(!p.verify(b"q", t.root()));
    }

    #[test]
    fn roots_differ_on_content() {
        let t1 = MerkleTree::build(&[b"a", b"b"]);
        let t2 = MerkleTree::build(&[b"a", b"c"]);
        assert_ne!(t1.root(), t2.root());
    }

    #[test]
    fn leaf_node_domain_separation() {
        // A one-leaf tree whose leaf equals an interior encoding must not
        // collide with a two-leaf tree.
        let a = hash_leaf(b"a");
        let b = hash_leaf(b"b");
        let mut interior = vec![NODE_PREFIX];
        interior.extend_from_slice(&a.0);
        interior.extend_from_slice(&b.0);
        let t_forged = MerkleTree::build(&[interior]);
        let t_real = MerkleTree::build(&[b"a".to_vec(), b"b".to_vec()]);
        assert_ne!(t_forged.root(), t_real.root());
    }

    #[test]
    fn empty_tree_has_stable_root() {
        let t1 = MerkleTree::build::<&[u8]>(&[]);
        let t2 = MerkleTree::build::<&[u8]>(&[]);
        assert_eq!(t1.root(), t2.root());
    }
}
