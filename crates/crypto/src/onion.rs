//! Layered (onion) encryption for anonymous paths (paper §4.1, Fig. 1).
//!
//! The initiator shares a symmetric key with each relay on an anonymous
//! path. A query is wrapped once per relay, innermost layer first; each
//! relay strips one layer, learning only the next hop, so no single relay
//! sees both the initiator and the queried node. Replies are wrapped in
//! the reverse direction and unwrapped by the initiator.
//!
//! This module implements the byte-level construction used by the live
//! examples and unit tests. The discrete-event simulators carry
//! structured `OnionPacket` values instead (same information, no byte
//! churn) — see DESIGN.md §1.

use std::fmt;

use crate::hmac::hmac_sha256;
use crate::stream::StreamCipher;

/// Errors from onion processing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OnionError {
    /// The layer is too short to contain a header.
    Truncated,
    /// The integrity tag did not match (wrong key or tampering).
    BadTag,
}

impl fmt::Display for OnionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OnionError::Truncated => write!(f, "onion layer truncated"),
            OnionError::BadTag => write!(f, "onion layer failed integrity check"),
        }
    }
}

impl std::error::Error for OnionError {}

/// One decrypted onion layer: where to forward, and the remaining onion.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OnionLayer {
    /// Next hop address (u64 id; 0 means "payload is for you").
    pub next_hop: u64,
    /// The inner ciphertext (or plaintext payload at the last layer).
    pub inner: Vec<u8>,
}

const TAG_LEN: usize = 16;
const HOP_LEN: usize = 8;
const NONCE_LEN: usize = 8;

/// Wrap `payload` in encryption layers for `hops`, **outermost key
/// first** (the order the packet traverses relays). `next_hops[i]` is the
/// address relay `i` forwards to; the final element is 0 by convention.
///
/// Layout of one layer (before encryption):
/// `next_hop (8) ‖ inner`. On the wire a layer is
/// `nonce (8) ‖ tag (16) ‖ ciphertext`.
#[must_use]
pub fn wrap(payload: &[u8], keys: &[[u8; 32]], next_hops: &[u64], nonce_seed: u64) -> Vec<u8> {
    assert_eq!(keys.len(), next_hops.len(), "one next-hop per key");
    let mut inner = payload.to_vec();
    // innermost layer corresponds to the last relay → iterate reversed
    for (i, (key, hop)) in keys.iter().zip(next_hops.iter()).enumerate().rev() {
        let nonce = nonce_seed
            .wrapping_add(i as u64)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut plain = Vec::with_capacity(HOP_LEN + inner.len());
        plain.extend_from_slice(&hop.to_be_bytes());
        plain.extend_from_slice(&inner);
        StreamCipher::new(key, nonce).apply(&mut plain);
        let tag = hmac_sha256(key, &plain);
        let mut layer = Vec::with_capacity(NONCE_LEN + TAG_LEN + plain.len());
        layer.extend_from_slice(&nonce.to_be_bytes());
        layer.extend_from_slice(&tag.0[..TAG_LEN]);
        layer.extend_from_slice(&plain);
        inner = layer;
    }
    inner
}

/// Strip one layer with `key`, authenticating it first.
///
/// # Errors
/// [`OnionError::Truncated`] on malformed input, [`OnionError::BadTag`]
/// when the MAC fails (wrong key or tampering).
pub fn unwrap(layer: &[u8], key: &[u8; 32]) -> Result<OnionLayer, OnionError> {
    if layer.len() < NONCE_LEN + TAG_LEN + HOP_LEN {
        return Err(OnionError::Truncated);
    }
    let nonce = u64::from_be_bytes(layer[..NONCE_LEN].try_into().unwrap());
    let tag = &layer[NONCE_LEN..NONCE_LEN + TAG_LEN];
    let ct = &layer[NONCE_LEN + TAG_LEN..];
    let expect = hmac_sha256(key, ct);
    if tag != &expect.0[..TAG_LEN] {
        return Err(OnionError::BadTag);
    }
    let mut plain = ct.to_vec();
    StreamCipher::new(key, nonce).apply(&mut plain);
    let next_hop = u64::from_be_bytes(plain[..HOP_LEN].try_into().unwrap());
    Ok(OnionLayer {
        next_hop,
        inner: plain[HOP_LEN..].to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize) -> Vec<[u8; 32]> {
        (0..n)
            .map(|i| {
                let mut k = [0u8; 32];
                k[0] = i as u8 + 1;
                k
            })
            .collect()
    }

    #[test]
    fn two_relay_path_roundtrip() {
        // initiator → A → B → queried node (paper Fig. 1(a))
        let ks = keys(2);
        let onion = wrap(b"get routing table", &ks, &[200, 0], 99);
        let l1 = unwrap(&onion, &ks[0]).unwrap();
        assert_eq!(l1.next_hop, 200);
        let l2 = unwrap(&l1.inner, &ks[1]).unwrap();
        assert_eq!(l2.next_hop, 0);
        assert_eq!(l2.inner, b"get routing table");
    }

    #[test]
    fn four_relay_path_roundtrip() {
        let ks = keys(4);
        let onion = wrap(b"q", &ks, &[2, 3, 4, 0], 1);
        let mut cur = onion;
        for (i, k) in ks.iter().enumerate() {
            let l = unwrap(&cur, k).unwrap();
            if i < 3 {
                assert_eq!(l.next_hop, i as u64 + 2);
            } else {
                assert_eq!(l.next_hop, 0);
                assert_eq!(l.inner, b"q");
            }
            cur = l.inner;
        }
    }

    #[test]
    fn wrong_key_detected() {
        let ks = keys(2);
        let onion = wrap(b"q", &ks, &[2, 0], 1);
        assert_eq!(unwrap(&onion, &ks[1]), Err(OnionError::BadTag));
    }

    #[test]
    fn tampering_detected() {
        let ks = keys(1);
        let mut onion = wrap(b"q", &ks, &[0], 1);
        let last = onion.len() - 1;
        onion[last] ^= 1;
        assert_eq!(unwrap(&onion, &ks[0]), Err(OnionError::BadTag));
    }

    #[test]
    fn truncated_rejected() {
        let ks = keys(1);
        assert_eq!(unwrap(&[0u8; 10], &ks[0]), Err(OnionError::Truncated));
    }

    #[test]
    fn middle_relay_cannot_read_payload() {
        let ks = keys(2);
        let onion = wrap(b"SECRETKEY", &ks, &[2, 0], 7);
        let l1 = unwrap(&onion, &ks[0]).unwrap();
        // relay 1 sees only ciphertext for relay 2
        assert!(!l1.inner.windows(9).any(|w| w == b"SECRETKEY"));
    }

    #[test]
    fn distinct_nonce_seeds_give_distinct_wires() {
        let ks = keys(2);
        let a = wrap(b"q", &ks, &[2, 0], 1);
        let b = wrap(b"q", &ks, &[2, 0], 2);
        assert_ne!(a, b);
    }
}
