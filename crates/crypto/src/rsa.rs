//! Toy RSA signatures with a 64-bit modulus.
//!
//! The Octopus protocols require genuine digital-signature *semantics*:
//! nodes sign routing tables, the CA verifies third-party proofs, and
//! signatures from revoked certificates must still verify against the old
//! public key (non-repudiation). We implement textbook RSA over a 64-bit
//! modulus: prime generation with Miller–Rabin, `e = 65537`,
//! `sign = H(m)^d mod n`, `verify: sig^e mod n == H(m) mod n`.
//!
//! 64-bit RSA is trivially breakable; the point is functional fidelity,
//! not security (see the crate-level warning and DESIGN.md). The
//! simulators account bandwidth using the paper's 40-byte ECDSA figure.

use std::fmt;

use rand::Rng;

use crate::sha256::sha256;

/// Public verification key `(n, e)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct PublicKey {
    /// Modulus.
    pub n: u64,
    /// Public exponent.
    pub e: u64,
}

/// An RSA signature (a single residue mod n).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signature(pub u64);

/// A signing/verification key pair.
#[derive(Clone)]
pub struct KeyPair {
    public: PublicKey,
    d: u64,
}

/// Errors from signature verification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SignatureError {
    /// The signature did not verify against the message and key.
    BadSignature,
}

impl fmt::Display for SignatureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SignatureError::BadSignature => write!(f, "signature verification failed"),
        }
    }
}

impl std::error::Error for SignatureError {}

impl fmt::Debug for KeyPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // never print the private exponent
        write!(f, "KeyPair({:?})", self.public)
    }
}

impl fmt::Debug for PublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PublicKey(n={:x}, e={:x})", self.n, self.e)
    }
}

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Signature({:016x})", self.0)
    }
}

fn mulmod(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

fn powmod(mut base: u64, mut exp: u64, m: u64) -> u64 {
    let mut acc = 1u64 % m;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mulmod(acc, base, m);
        }
        base = mulmod(base, base, m);
        exp >>= 1;
    }
    acc
}

/// Deterministic Miller–Rabin, exact for all u64 with these witnesses.
fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n % p == 0 {
            return false;
        }
    }
    let mut d = n - 1;
    let mut r = 0u32;
    while d % 2 == 0 {
        d /= 2;
        r += 1;
    }
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = powmod(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..r - 1 {
            x = mulmod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

fn egcd(a: i128, b: i128) -> (i128, i128, i128) {
    if b == 0 {
        (a, 1, 0)
    } else {
        let (g, x, y) = egcd(b, a % b);
        (g, y, x - (a / b) * y)
    }
}

fn modinv(a: u64, m: u64) -> Option<u64> {
    let (g, x, _) = egcd(a as i128, m as i128);
    if g != 1 {
        None
    } else {
        Some(((x % m as i128 + m as i128) % m as i128) as u64)
    }
}

fn random_prime<R: Rng + ?Sized>(rng: &mut R, bits: u32) -> u64 {
    let mut p: u64 = rng.gen_range(0..1u64 << (bits - 1)) | (1 << (bits - 1)) | 1;
    // ensure p-1 not divisible by 65537 so e is invertible
    while !is_prime(p) || (p - 1) % 65537 == 0 {
        p = rng.gen_range(0..1u64 << (bits - 1)) | (1 << (bits - 1)) | 1;
    }
    p
}

impl KeyPair {
    /// Generate a fresh key pair with two 32-bit primes.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self {
        loop {
            let p = random_prime(rng, 32);
            let q = random_prime(rng, 32);
            if p == q {
                continue;
            }
            let n = p * q; // fits: both < 2^32
            let phi = (p - 1) * (q - 1);
            let e = 65537u64;
            let Some(d) = modinv(e, phi) else { continue };
            return KeyPair {
                public: PublicKey { n, e },
                d,
            };
        }
    }

    /// The public half.
    #[must_use]
    pub fn public(&self) -> PublicKey {
        self.public
    }

    /// Sign a message: `H(m)^d mod n` where `H` is SHA-256 truncated into
    /// the modulus.
    #[must_use]
    pub fn sign(&self, message: &[u8]) -> Signature {
        let h = digest_residue(message, self.public.n);
        Signature(powmod(h, self.d, self.public.n))
    }
}

impl PublicKey {
    /// Verify `sig` over `message`.
    ///
    /// # Errors
    /// Returns [`SignatureError::BadSignature`] when verification fails.
    pub fn verify(&self, message: &[u8], sig: Signature) -> Result<(), SignatureError> {
        let h = digest_residue(message, self.n);
        if powmod(sig.0, self.e, self.n) == h {
            Ok(())
        } else {
            Err(SignatureError::BadSignature)
        }
    }
}

fn digest_residue(message: &[u8], n: u64) -> u64 {
    let d = sha256(message);
    let x = u64::from_be_bytes(d.0[..8].try_into().expect("32-byte digest"));
    x % n
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn primality_known_values() {
        assert!(is_prime(2));
        assert!(is_prime(3));
        assert!(is_prime(65537));
        assert!(is_prime(0xFFFF_FFFF_FFFF_FFC5)); // largest u64 prime
        assert!(!is_prime(1));
        assert!(!is_prime(0));
        assert!(!is_prime(65536));
        assert!(!is_prime(3_215_031_751)); // strong pseudoprime to bases 2,3,5,7
    }

    #[test]
    fn powmod_edges() {
        assert_eq!(powmod(2, 10, 1_000_000), 1024);
        assert_eq!(powmod(0, 0, 7), 1);
        assert_eq!(powmod(5, 0, 7), 1);
        // (m+1)^2 ≡ 1 (mod m): exercises the 128-bit intermediate product
        assert_eq!(powmod(u64::MAX - 1, 2, u64::MAX - 2), 1);
    }

    #[test]
    fn modinv_inverse() {
        let inv = modinv(3, 7).unwrap();
        assert_eq!((3 * inv) % 7, 1);
        assert_eq!(modinv(2, 4), None);
    }

    #[test]
    fn sign_verify_roundtrip() {
        let mut rng = StdRng::seed_from_u64(1);
        let kp = KeyPair::generate(&mut rng);
        let sig = kp.sign(b"routing table v1");
        assert!(kp.public().verify(b"routing table v1", sig).is_ok());
    }

    #[test]
    fn tampered_message_rejected() {
        let mut rng = StdRng::seed_from_u64(2);
        let kp = KeyPair::generate(&mut rng);
        let sig = kp.sign(b"honest successor list");
        assert_eq!(
            kp.public().verify(b"manipulated successor list", sig),
            Err(SignatureError::BadSignature)
        );
    }

    #[test]
    fn wrong_key_rejected() {
        let mut rng = StdRng::seed_from_u64(3);
        let kp1 = KeyPair::generate(&mut rng);
        let kp2 = KeyPair::generate(&mut rng);
        let sig = kp1.sign(b"msg");
        assert!(kp2.public().verify(b"msg", sig).is_err());
    }

    #[test]
    fn forged_signature_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        let kp = KeyPair::generate(&mut rng);
        let sig = kp.sign(b"msg");
        assert!(kp.public().verify(b"msg", Signature(sig.0 ^ 1)).is_err());
    }

    #[test]
    fn many_keypairs_roundtrip() {
        let mut rng = StdRng::seed_from_u64(5);
        for i in 0..25u32 {
            let kp = KeyPair::generate(&mut rng);
            let msg = i.to_be_bytes();
            let sig = kp.sign(&msg);
            assert!(kp.public().verify(&msg, sig).is_ok(), "keypair {i}");
        }
    }
}
