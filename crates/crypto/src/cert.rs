//! Certificates and the certificate authority (paper §3.2, §4.6).
//!
//! Octopus limits Sybil attacks with a CA that issues identity
//! certificates; the same CA processes attack reports and *revokes* the
//! certificates of identified malicious nodes, which is how attackers are
//! ejected from the network. Unlike Myrmic/Torsk, certificates bind only
//! identity (id, address, public key, expiry) — never routing state — so
//! they need no re-issue on churn.

use std::collections::HashSet;
use std::fmt;

use octopus_id::NodeId;

use crate::merkle::MerkleTree;
use crate::rsa::{KeyPair, PublicKey, Signature, SignatureError};
use crate::sha256::sha256;

/// An identity certificate (the paper's X.509-lite, footnote 4: node IP,
/// public key, expiry, CA signature — 50 bytes on the wire).
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Certificate {
    /// The ring position bound to this identity.
    pub node_id: NodeId,
    /// Network address (abstracted as a u32, standing in for IPv4).
    pub address: u32,
    /// The node's public verification key.
    pub public_key: PublicKey,
    /// Expiry time in seconds since the epoch of the deployment.
    pub expires_at: u64,
    /// The CA's signature over all of the above.
    pub ca_signature: Signature,
}

impl fmt::Debug for Certificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Certificate")
            .field("node_id", &self.node_id)
            .field("address", &self.address)
            .field("expires_at", &self.expires_at)
            .finish_non_exhaustive()
    }
}

impl Certificate {
    /// Canonical byte encoding signed by the CA.
    #[must_use]
    pub fn signed_bytes(node_id: NodeId, address: u32, key: PublicKey, expires_at: u64) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + 4 + 16 + 8);
        out.extend_from_slice(&node_id.0.to_be_bytes());
        out.extend_from_slice(&address.to_be_bytes());
        out.extend_from_slice(&key.n.to_be_bytes());
        out.extend_from_slice(&key.e.to_be_bytes());
        out.extend_from_slice(&expires_at.to_be_bytes());
        out
    }

    /// Verify this certificate against the CA's public key and the clock.
    ///
    /// # Errors
    /// [`CertificateError::BadCaSignature`] when the CA signature fails,
    /// [`CertificateError::Expired`] when past expiry.
    pub fn verify(&self, ca_key: PublicKey, now: u64) -> Result<(), CertificateError> {
        let bytes =
            Certificate::signed_bytes(self.node_id, self.address, self.public_key, self.expires_at);
        ca_key
            .verify(&bytes, self.ca_signature)
            .map_err(CertificateError::BadCaSignature)?;
        if now > self.expires_at {
            return Err(CertificateError::Expired);
        }
        Ok(())
    }
}

/// Errors from certificate validation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CertificateError {
    /// The CA signature on the certificate did not verify.
    BadCaSignature(SignatureError),
    /// The certificate is past its expiry time.
    Expired,
    /// The certificate appears on the revocation list.
    Revoked,
}

impl fmt::Display for CertificateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertificateError::BadCaSignature(e) => write!(f, "bad CA signature: {e}"),
            CertificateError::Expired => write!(f, "certificate expired"),
            CertificateError::Revoked => write!(f, "certificate revoked"),
        }
    }
}

impl std::error::Error for CertificateError {}

/// The certificate authority.
///
/// Issues certificates and maintains the revocation list. The Octopus CA
/// is "online only for a short period with very limited workload" (§4.6);
/// the report-investigation logic lives in `octopus-core::ca` — this type
/// is the PKI substrate it drives.
pub struct CertificateAuthority {
    keypair: KeyPair,
    revoked: HashSet<NodeId>,
    issued: u64,
}

impl CertificateAuthority {
    /// Create a CA with a fresh key pair.
    pub fn new<R: rand::Rng + ?Sized>(rng: &mut R) -> Self {
        CertificateAuthority {
            keypair: KeyPair::generate(rng),
            revoked: HashSet::new(),
            issued: 0,
        }
    }

    /// The CA's public verification key, known to all nodes.
    #[must_use]
    pub fn public_key(&self) -> PublicKey {
        self.keypair.public()
    }

    /// Issue a certificate binding `node_id`/`address` to `key`.
    pub fn issue(
        &mut self,
        node_id: NodeId,
        address: u32,
        key: PublicKey,
        expires_at: u64,
    ) -> Certificate {
        self.issued += 1;
        let bytes = Certificate::signed_bytes(node_id, address, key, expires_at);
        Certificate {
            node_id,
            address,
            public_key: key,
            expires_at,
            ca_signature: self.keypair.sign(&bytes),
        }
    }

    /// Revoke the certificate of `node_id` (ejecting it from the overlay).
    /// Returns false when already revoked.
    pub fn revoke(&mut self, node_id: NodeId) -> bool {
        self.revoked.insert(node_id)
    }

    /// Is `node_id` revoked?
    #[must_use]
    pub fn is_revoked(&self, node_id: NodeId) -> bool {
        self.revoked.contains(&node_id)
    }

    /// Full certificate check: CA signature, expiry, revocation.
    ///
    /// # Errors
    /// See [`CertificateError`].
    pub fn check(&self, cert: &Certificate, now: u64) -> Result<(), CertificateError> {
        if self.is_revoked(cert.node_id) {
            return Err(CertificateError::Revoked);
        }
        cert.verify(self.public_key(), now)
    }

    /// Number of certificates issued so far.
    #[must_use]
    pub fn issued_count(&self) -> u64 {
        self.issued
    }

    /// Export a signed revocation list for P2P distribution.
    #[must_use]
    pub fn revocation_list(&self) -> RevocationList {
        let mut ids: Vec<NodeId> = self.revoked.iter().copied().collect();
        ids.sort_unstable();
        let leaves: Vec<Vec<u8>> = ids.iter().map(|id| id.0.to_be_bytes().to_vec()).collect();
        let tree = MerkleTree::build(&leaves);
        let root = tree.root();
        let sig = self.keypair.sign(&root.0);
        RevocationList {
            revoked: ids,
            root,
            signature: sig,
        }
    }
}

/// A signed certificate revocation list distributed over the overlay.
///
/// The list is committed to with a Merkle tree (following the
/// Merkle-hash-tree CRL design the paper cites \[25\]) so that nodes can
/// verify membership proofs without holding the whole list.
#[derive(Clone, Debug)]
pub struct RevocationList {
    /// Revoked node ids, sorted.
    pub revoked: Vec<NodeId>,
    /// Merkle root over the sorted revoked ids.
    pub root: crate::sha256::Digest,
    /// CA signature over the root.
    pub signature: Signature,
}

impl RevocationList {
    /// Verify the CA signature on the list root and that the root indeed
    /// commits to `revoked`.
    ///
    /// # Errors
    /// [`SignatureError::BadSignature`] when either check fails.
    pub fn verify(&self, ca_key: PublicKey) -> Result<(), SignatureError> {
        let leaves: Vec<Vec<u8>> = self
            .revoked
            .iter()
            .map(|id| id.0.to_be_bytes().to_vec())
            .collect();
        let tree = MerkleTree::build(&leaves);
        if tree.root() != self.root {
            return Err(SignatureError::BadSignature);
        }
        ca_key.verify(&self.root.0, self.signature)
    }

    /// Is `id` on the list?
    #[must_use]
    pub fn contains(&self, id: NodeId) -> bool {
        self.revoked.binary_search(&id).is_ok()
    }
}

/// Derive a node's ring position from its public key, as deployments
/// derive ids from certificates to stop id selection attacks.
#[must_use]
pub fn node_id_from_key(key: PublicKey) -> NodeId {
    let mut bytes = Vec::with_capacity(16);
    bytes.extend_from_slice(&key.n.to_be_bytes());
    bytes.extend_from_slice(&key.e.to_be_bytes());
    let d = sha256(&bytes);
    NodeId(u64::from_be_bytes(d.0[..8].try_into().expect("32 bytes")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (CertificateAuthority, KeyPair, StdRng) {
        let mut rng = StdRng::seed_from_u64(11);
        let ca = CertificateAuthority::new(&mut rng);
        let kp = KeyPair::generate(&mut rng);
        (ca, kp, rng)
    }

    #[test]
    fn issue_and_verify() {
        let (mut ca, kp, _) = setup();
        let cert = ca.issue(NodeId(42), 0x0a000001, kp.public(), 10_000);
        assert!(ca.check(&cert, 500).is_ok());
        assert_eq!(ca.issued_count(), 1);
    }

    #[test]
    fn expiry_enforced() {
        let (mut ca, kp, _) = setup();
        let cert = ca.issue(NodeId(42), 1, kp.public(), 100);
        assert_eq!(ca.check(&cert, 101), Err(CertificateError::Expired));
        assert!(ca.check(&cert, 100).is_ok());
    }

    #[test]
    fn tampered_cert_rejected() {
        let (mut ca, kp, _) = setup();
        let mut cert = ca.issue(NodeId(42), 1, kp.public(), 10_000);
        cert.node_id = NodeId(43);
        assert!(matches!(
            ca.check(&cert, 0),
            Err(CertificateError::BadCaSignature(_))
        ));
    }

    #[test]
    fn revocation_ejects() {
        let (mut ca, kp, _) = setup();
        let cert = ca.issue(NodeId(42), 1, kp.public(), 10_000);
        assert!(ca.revoke(NodeId(42)));
        assert!(!ca.revoke(NodeId(42)), "double revoke reports false");
        assert_eq!(ca.check(&cert, 0), Err(CertificateError::Revoked));
    }

    #[test]
    fn revocation_list_verifies() {
        let (mut ca, kp, _) = setup();
        let _ = ca.issue(NodeId(1), 1, kp.public(), 10_000);
        ca.revoke(NodeId(5));
        ca.revoke(NodeId(3));
        let rl = ca.revocation_list();
        assert!(rl.verify(ca.public_key()).is_ok());
        assert!(rl.contains(NodeId(3)));
        assert!(rl.contains(NodeId(5)));
        assert!(!rl.contains(NodeId(4)));
    }

    #[test]
    fn forged_revocation_list_rejected() {
        let (mut ca, _, _) = setup();
        ca.revoke(NodeId(5));
        let mut rl = ca.revocation_list();
        rl.revoked.push(NodeId(99)); // adversary inserts an honest node
        rl.revoked.sort_unstable();
        assert!(rl.verify(ca.public_key()).is_err());
    }

    #[test]
    fn node_id_derivation_is_deterministic() {
        let (_, kp, _) = setup();
        assert_eq!(node_id_from_key(kp.public()), node_id_from_key(kp.public()));
    }

    #[test]
    fn empty_revocation_list_ok() {
        let (ca, _, _) = setup();
        let rl = ca.revocation_list();
        assert!(rl.verify(ca.public_key()).is_ok());
        assert!(rl.revoked.is_empty());
    }
}
