//! Halo: high-assurance locate \[17\].
//!
//! Instead of looking up the target key directly, Halo performs
//! redundant searches for *knuckles* — nodes whose fingers point at the
//! target — and cross-checks their answers. The paper's comparison run
//! uses "degree-2 recursion with redundant parameter 8 × 4" (§7): 8
//! knuckle searches, each itself performed via 4 redundant sub-searches.
//! A Halo lookup only completes when **all** redundant searches return
//! (§7: "a lookup is not completed until all redundant lookups' results
//! are returned") — which is why its mean latency is dominated by the
//! slowest path while its median stays Chord-like.

use octopus_chord::{iterative_lookup, RoutingView};
use octopus_id::{Key, NodeId};
use octopus_net::{sizes, LatencyModel};
use octopus_sim::Duration;
use rand::Rng;

/// Knuckle searches per lookup (the "8" of 8×4).
pub const HALO_REDUNDANCY: usize = 8;
/// Sub-searches per knuckle search (the "4" of 8×4, degree-2 recursion).
pub const HALO_DEGREE: usize = 4;

/// Result of one simulated Halo lookup.
#[derive(Clone, Debug)]
pub struct HaloLookup {
    /// The answer each knuckle search produced.
    pub candidates: Vec<NodeId>,
    /// The majority answer (the high-assurance result).
    pub result: Option<NodeId>,
    /// Latency: redundant searches run in parallel; the lookup waits for
    /// the slowest.
    pub latency: Duration,
    /// Total bytes across all redundant searches.
    pub bytes: u64,
}

/// Run a Halo lookup: 8 knuckle searches × 4 sub-searches, in parallel.
pub fn halo_lookup<V: RoutingView, L: LatencyModel, R: Rng + ?Sized>(
    view: &V,
    initiator: NodeId,
    key: Key,
    latency: &L,
    rng: &mut R,
) -> HaloLookup {
    let mut candidates = Vec::with_capacity(HALO_REDUNDANCY);
    let mut slowest = Duration::ZERO;
    let mut bytes = 0u64;
    for i in 0..HALO_REDUNDANCY {
        // knuckle i targets the position whose 2^(i-th) finger covers the
        // key: key - 2^(63-i) (search keys fan out across the ring)
        let knuckle_key = Key(key.0.wrapping_sub(1u64 << (63 - i)));
        let mut sub_latencies = Vec::with_capacity(HALO_DEGREE);
        let mut answer = None;
        for j in 0..HALO_DEGREE {
            // degree-2 recursion: sub-searches approach the knuckle from
            // slightly different positions
            let sub_key = Key(knuckle_key.0.wrapping_sub(j as u64 * 1024));
            let trace = iterative_lookup(view, initiator, sub_key);
            let mut sub_latency = Duration::ZERO;
            for &q in &trace.queried {
                sub_latency = sub_latency
                    + latency.sample(initiator, q, rng)
                    + latency.sample(q, initiator, rng);
                if rng.gen::<f64>() < crate::chord::STRAGGLER_PROB {
                    sub_latency = sub_latency + crate::chord::straggler_delay(rng, true);
                }
                bytes += u64::from(sizes::REQUEST)
                    + u64::from(sizes::ROUTING_ITEM)
                    + 2 * u64::from(sizes::UDP_HEADER);
            }
            sub_latencies.push(sub_latency);
            if j == 0 {
                answer = trace.result();
            }
        }
        // the redundant sub-searches cross-check each other: the knuckle
        // search concludes once a checking quorum (2 of 4) agrees, so a
        // single straggling sub-search is masked — but the *lookup* still
        // waits for all 8 knuckles, so an unlucky knuckle (several
        // stragglers at once) stalls everything. That is exactly the
        // mean ≫ median signature of Table 3.
        sub_latencies.sort_unstable();
        let mut knuckle_latency = sub_latencies.get(1).copied().unwrap_or(Duration::ZERO);
        // the knuckle then answers the actual key query: one more RTT
        if let Some(k) = answer {
            if k != initiator {
                knuckle_latency = knuckle_latency
                    + latency.sample(initiator, k, rng)
                    + latency.sample(k, initiator, rng);
                bytes += u64::from(sizes::REQUEST)
                    + u64::from(sizes::ROUTING_ITEM)
                    + 2 * u64::from(sizes::UDP_HEADER);
            }
            // ask the knuckle for its finger covering the key
            let owner = view.table_of(k).next_hop(key);
            let cand = match owner {
                octopus_chord::NextHop::Found(n) => n,
                octopus_chord::NextHop::Forward(n) => n,
            };
            candidates.push(cand);
        }
        slowest = slowest.max(knuckle_latency);
    }
    // majority vote over knuckle answers
    let mut counts: std::collections::HashMap<NodeId, usize> = std::collections::HashMap::new();
    for &c in &candidates {
        *counts.entry(c).or_default() += 1;
    }
    let result = counts.into_iter().max_by_key(|&(_, c)| c).map(|(n, _)| n);
    HaloLookup {
        candidates,
        result,
        latency: slowest,
        bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopus_chord::{ChordConfig, GroundTruthView};
    use octopus_id::IdSpace;
    use octopus_net::KingLikeLatency;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn halo_slower_than_chord_on_average() {
        let mut rng = StdRng::seed_from_u64(5);
        let space = IdSpace::random(400, &mut rng);
        let view = GroundTruthView::new(&space, ChordConfig::for_network(400));
        let lat = KingLikeLatency::new(6);
        let mut halo_total = 0.0;
        let mut chord_total = 0.0;
        for _ in 0..30 {
            let i = space.random_member(&mut rng);
            let key = Key(rng.gen());
            let h = halo_lookup(&view, i, key, &lat, &mut rng);
            let c = crate::chord::chord_lookup(&view, i, key, &lat, &mut rng);
            halo_total += h.latency.as_millis_f64();
            chord_total += c.latency.as_millis_f64();
        }
        assert!(
            halo_total > chord_total,
            "waiting for all redundant searches must cost more ({halo_total} vs {chord_total})"
        );
    }

    #[test]
    fn halo_finds_correct_owner_honestly() {
        let mut rng = StdRng::seed_from_u64(7);
        let space = IdSpace::random(400, &mut rng);
        let view = GroundTruthView::new(&space, ChordConfig::for_network(400));
        let lat = KingLikeLatency::new(8);
        let mut correct = 0;
        let trials = 20;
        for _ in 0..trials {
            let i = space.random_member(&mut rng);
            let key = Key(rng.gen());
            let h = halo_lookup(&view, i, key, &lat, &mut rng);
            if h.result == Some(space.owner_of(key).owner) {
                correct += 1;
            }
        }
        assert!(
            correct >= trials * 7 / 10,
            "knuckle majority should usually locate the owner ({correct}/{trials})"
        );
    }

    #[test]
    fn bytes_reflect_redundancy() {
        let mut rng = StdRng::seed_from_u64(9);
        let space = IdSpace::random(400, &mut rng);
        let view = GroundTruthView::new(&space, ChordConfig::for_network(400));
        let lat = KingLikeLatency::new(10);
        let i = space.random_member(&mut rng);
        let key = Key(rng.gen());
        let h = halo_lookup(&view, i, key, &lat, &mut rng);
        let c = crate::chord::chord_lookup(&view, i, key, &lat, &mut rng);
        assert!(
            h.bytes > 3 * c.bytes.max(1),
            "8×4 redundancy must multiply traffic"
        );
    }
}
