//! NISAN \[28\]: iterative lookup over whole fingertables.
//!
//! Each queried node returns its *entire* fingertable (hiding the lookup
//! key), and the initiator applies bound checking to limit manipulation.
//! But the initiator still contacts every hop directly — exposing its
//! identity — and the *positions* of its queries leak the target to a
//! range-estimation attack \[38\] (reproduced in `octopus-anonymity`).

use octopus_chord::{BoundChecker, ChordConfig, NextHop, RoutingView};
use octopus_id::{Key, NodeId};
use octopus_net::{sizes, LatencyModel};
use octopus_sim::Duration;
use rand::Rng;

/// Result of one simulated NISAN lookup.
#[derive(Clone, Debug)]
pub struct NisanLookup {
    /// Nodes the initiator queried, in order (the observable trace the
    /// range-estimation attack consumes).
    pub queried: Vec<NodeId>,
    /// The owner found.
    pub result: Option<NodeId>,
    /// End-to-end latency.
    pub latency: Duration,
    /// Bytes moved (fingertable replies are large).
    pub bytes: u64,
    /// Fingers that failed bound checking along the way.
    pub bound_failures: usize,
}

/// Run a NISAN lookup over `view`.
pub fn nisan_lookup<V: RoutingView, L: LatencyModel, R: Rng + ?Sized>(
    view: &V,
    config: ChordConfig,
    n_estimate: usize,
    initiator: NodeId,
    key: Key,
    latency: &L,
    rng: &mut R,
) -> NisanLookup {
    let checker = BoundChecker::from_network_size(config, n_estimate);
    let mut queried = Vec::new();
    let mut total = Duration::ZERO;
    let mut bytes = 0u64;
    let mut bound_failures = 0usize;
    let mut current = view.table_of(initiator);
    let result = loop {
        match current.next_hop(key) {
            NextHop::Found(owner) => break Some(owner),
            NextHop::Forward(next) => {
                if queried.len() >= 64 {
                    break None;
                }
                queried.push(next);
                total = total
                    + latency.sample(initiator, next, rng)
                    + latency.sample(next, initiator, rng);
                // request + a full signed routing table back
                bytes += u64::from(sizes::REQUEST)
                    + u64::from(sizes::signed_table(
                        config.fingers + config.successors as u32,
                    ))
                    + 2 * u64::from(sizes::UDP_HEADER);
                let table = view.table_of(next);
                if !checker.passes(&table) {
                    bound_failures += 1;
                }
                current = table;
            }
        }
    };
    NisanLookup {
        queried,
        result,
        latency: total,
        bytes,
        bound_failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopus_chord::GroundTruthView;
    use octopus_id::IdSpace;
    use octopus_net::KingLikeLatency;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn correct_and_heavier_than_chord() {
        let mut rng = StdRng::seed_from_u64(11);
        let space = IdSpace::random(500, &mut rng);
        let cfg = ChordConfig::for_network(500);
        let view = GroundTruthView::new(&space, cfg);
        let lat = KingLikeLatency::new(12);
        let i = space.random_member(&mut rng);
        let key = Key(rng.gen());
        let n = nisan_lookup(&view, cfg, 500, i, key, &lat, &mut rng);
        assert_eq!(n.result, Some(space.owner_of(key).owner));
        let c = crate::chord::chord_lookup(&view, i, key, &lat, &mut rng);
        if !n.queried.is_empty() && !c.trace.queried.is_empty() {
            let per_hop_nisan = n.bytes / n.queried.len() as u64;
            let per_hop_chord = c.bytes / c.trace.queried.len() as u64;
            assert!(
                per_hop_nisan > per_hop_chord,
                "whole-fingertable replies must outweigh single-finger replies"
            );
        }
    }

    #[test]
    fn honest_tables_pass_bounds() {
        let mut rng = StdRng::seed_from_u64(13);
        let space = IdSpace::random(500, &mut rng);
        let cfg = ChordConfig::for_network(500);
        let view = GroundTruthView::new(&space, cfg);
        let lat = KingLikeLatency::new(14);
        let mut failures = 0;
        for _ in 0..20 {
            let i = space.random_member(&mut rng);
            let n = nisan_lookup(&view, cfg, 500, i, Key(rng.gen()), &lat, &mut rng);
            failures += n.bound_failures;
        }
        assert!(
            failures <= 2,
            "honest fingertables should pass bound checks"
        );
    }
}
