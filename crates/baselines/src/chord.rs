//! Vanilla iterative Chord lookup \[34\].
//!
//! The initiator contacts each intermediate node *directly* (exposing
//! its identity) and reveals the lookup key (each hop returns only its
//! closest finger). Fast and cheap — the baseline row of Table 3 — but
//! with no anonymity at all.

use octopus_chord::{iterative_lookup, LookupTrace, RoutingView};
use octopus_id::{Key, NodeId};
use octopus_net::{sizes, LatencyModel};
use octopus_sim::Duration;
use rand::Rng;

/// Probability a contacted node is a straggler (an overloaded PlanetLab
/// host that forces a timeout + retry). The paper's measured Chord
/// latencies (mean 1.35 s vs median 0.35 s) and Halo's (6.89 s vs
/// 1.79 s) are dominated by exactly this effect.
pub(crate) const STRAGGLER_PROB: f64 = 0.09;

/// Extra delay incurred when a hop straggles: a retry timeout. Chord
/// retries a single path quickly; Halo's cross-checked searches wait
/// longer before giving a straggler up.
pub(crate) fn straggler_delay<R: Rng + ?Sized>(rng: &mut R, slow: bool) -> Duration {
    if slow {
        Duration::from_millis(rng.gen_range(3000..15000))
    } else {
        Duration::from_millis(rng.gen_range(1000..8000))
    }
}

/// Result of one simulated Chord lookup.
#[derive(Clone, Debug)]
pub struct ChordLookup {
    /// The underlying query trace.
    pub trace: LookupTrace,
    /// End-to-end latency: one RTT initiator ↔ each queried node.
    pub latency: Duration,
    /// Bytes moved (requests + closest-finger replies).
    pub bytes: u64,
}

/// Run a Chord lookup over `view` and replay its message pattern against
/// the latency model.
pub fn chord_lookup<V: RoutingView, L: LatencyModel, R: Rng + ?Sized>(
    view: &V,
    initiator: NodeId,
    key: Key,
    latency: &L,
    rng: &mut R,
) -> ChordLookup {
    let trace = iterative_lookup(view, initiator, key);
    let mut total = Duration::ZERO;
    let mut bytes = 0u64;
    for &q in &trace.queried {
        // iterative: request out, reply back
        total = total + latency.sample(initiator, q, rng) + latency.sample(q, initiator, rng);
        if rng.gen::<f64>() < STRAGGLER_PROB {
            total = total + straggler_delay(rng, false);
        }
        // vanilla Chord replies with a single closest finger
        bytes += u64::from(sizes::REQUEST)
            + u64::from(sizes::ROUTING_ITEM)
            + 2 * u64::from(sizes::UDP_HEADER);
    }
    ChordLookup {
        trace,
        latency: total,
        bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopus_chord::{ChordConfig, GroundTruthView};
    use octopus_id::IdSpace;
    use octopus_net::KingLikeLatency;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn finds_owner_with_plausible_latency() {
        let mut rng = StdRng::seed_from_u64(1);
        let space = IdSpace::random(500, &mut rng);
        let view = GroundTruthView::new(&space, ChordConfig::for_network(500));
        let lat = KingLikeLatency::new(2);
        let initiator = space.random_member(&mut rng);
        let res = chord_lookup(&view, initiator, Key(rng.gen()), &lat, &mut rng);
        assert_eq!(
            res.trace.result(),
            Some(space.owner_of(res.trace.key).owner)
        );
        // h hops ≈ log N; each RTT ≈ 182 ms → well under 10 s
        assert!(res.latency < Duration::from_secs(10));
        if res.trace.hops() > 0 {
            assert!(res.latency > Duration::ZERO);
            assert!(res.bytes > 0);
        }
    }

    #[test]
    fn zero_hop_lookup_is_free() {
        let mut rng = StdRng::seed_from_u64(3);
        let space = IdSpace::random(50, &mut rng);
        let view = GroundTruthView::new(&space, ChordConfig::for_network(50));
        let lat = KingLikeLatency::new(4);
        let n = space.ids()[0];
        let succ = space.successor(n, 1);
        let res = chord_lookup(&view, n, succ.as_key(), &lat, &mut rng);
        assert_eq!(res.trace.hops(), 0);
        assert_eq!(res.latency, Duration::ZERO);
        assert_eq!(res.bytes, 0);
    }
}
