//! Torsk \[20\]: buddy (proxy) lookups.
//!
//! The initiator performs a random walk to find a *buddy* and asks the
//! buddy to run the lookup on its behalf: intermediate nodes see the
//! buddy, not the initiator. This protects the initiator — but the
//! lookup itself is an ordinary (Myrmic-secured) lookup that reveals the
//! target to whoever observes it, which is what makes Torsk vulnerable
//! to relay-exhaustion attacks \[38\] (§6.3).

use octopus_chord::{iterative_lookup, RoutingView};
use octopus_id::{Key, NodeId};
use octopus_net::{sizes, LatencyModel};
use octopus_sim::Duration;
use rand::seq::SliceRandom;
use rand::Rng;

/// Random-walk length for buddy selection.
pub const BUDDY_WALK: usize = 6;

/// Result of one simulated Torsk lookup.
#[derive(Clone, Debug)]
pub struct TorskLookup {
    /// The buddy that proxied the lookup.
    pub buddy: NodeId,
    /// The walk hops that led to the buddy (observable by walk relays).
    pub walk: Vec<NodeId>,
    /// Nodes the buddy queried (observable, linkable to the *buddy*).
    pub queried: Vec<NodeId>,
    /// The owner found.
    pub result: Option<NodeId>,
    /// End-to-end latency: walk + proxy round trip + buddy's lookup.
    pub latency: Duration,
    /// Bytes moved.
    pub bytes: u64,
}

/// Run a Torsk lookup over `view`.
pub fn torsk_lookup<V: RoutingView, L: LatencyModel, R: Rng + ?Sized>(
    view: &V,
    initiator: NodeId,
    key: Key,
    latency: &L,
    rng: &mut R,
) -> TorskLookup {
    // random walk over fingertables to find the buddy
    let mut walk = Vec::with_capacity(BUDDY_WALK);
    let mut total = Duration::ZERO;
    let mut bytes = 0u64;
    let mut current = initiator;
    for _ in 0..BUDDY_WALK {
        let table = view.table_of(current);
        let candidates: Vec<NodeId> = table
            .fingers
            .iter()
            .copied()
            .filter(|&f| f != current && f != initiator)
            .collect();
        let Some(&next) = candidates.as_slice().choose(rng) else {
            break;
        };
        total = total + latency.sample(current, next, rng) + latency.sample(next, current, rng);
        bytes += u64::from(sizes::REQUEST)
            + u64::from(sizes::signed_table(12))
            + 2 * u64::from(sizes::UDP_HEADER);
        walk.push(next);
        current = next;
    }
    let buddy = current;
    // hand the key to the buddy, buddy runs the lookup, returns result
    total = total + latency.sample(initiator, buddy, rng);
    bytes += u64::from(sizes::REQUEST) + u64::from(sizes::UDP_HEADER);
    let trace = iterative_lookup(view, buddy, key);
    for &q in &trace.queried {
        total = total + latency.sample(buddy, q, rng) + latency.sample(q, buddy, rng);
        // Myrmic replies carry certified routing state
        bytes += u64::from(sizes::REQUEST)
            + u64::from(sizes::ROUTING_ITEM)
            + u64::from(sizes::CERTIFICATE)
            + u64::from(sizes::SIGNATURE)
            + 2 * u64::from(sizes::UDP_HEADER);
    }
    total = total + latency.sample(buddy, initiator, rng);
    bytes += u64::from(sizes::ROUTING_ITEM) + u64::from(sizes::UDP_HEADER);
    TorskLookup {
        buddy,
        walk,
        queried: trace.queried.clone(),
        result: trace.result(),
        latency: total,
        bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopus_chord::{ChordConfig, GroundTruthView};
    use octopus_id::IdSpace;
    use octopus_net::KingLikeLatency;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn finds_owner_via_buddy() {
        let mut rng = StdRng::seed_from_u64(15);
        let space = IdSpace::random(400, &mut rng);
        let view = GroundTruthView::new(&space, ChordConfig::for_network(400));
        let lat = KingLikeLatency::new(16);
        let i = space.random_member(&mut rng);
        let key = Key(rng.gen());
        let t = torsk_lookup(&view, i, key, &lat, &mut rng);
        assert_eq!(t.result, Some(space.owner_of(key).owner));
        assert_ne!(t.buddy, i, "the buddy proxies for the initiator");
        assert!(!t.walk.is_empty());
    }

    #[test]
    fn lookup_queries_come_from_buddy_not_initiator() {
        // the anonymity property Torsk buys: queried nodes never see the
        // initiator, only the buddy — encoded here as the trace being a
        // buddy-rooted lookup
        let mut rng = StdRng::seed_from_u64(17);
        let space = IdSpace::random(400, &mut rng);
        let view = GroundTruthView::new(&space, ChordConfig::for_network(400));
        let lat = KingLikeLatency::new(18);
        let i = space.random_member(&mut rng);
        let t = torsk_lookup(&view, i, Key(rng.gen()), &lat, &mut rng);
        assert!(!t.queried.contains(&i) || t.queried.is_empty());
    }

    #[test]
    fn costlier_than_plain_chord() {
        let mut rng = StdRng::seed_from_u64(19);
        let space = IdSpace::random(400, &mut rng);
        let view = GroundTruthView::new(&space, ChordConfig::for_network(400));
        let lat = KingLikeLatency::new(20);
        let i = space.random_member(&mut rng);
        let key = Key(rng.gen());
        let t = torsk_lookup(&view, i, key, &lat, &mut rng);
        let c = crate::chord::chord_lookup(&view, i, key, &lat, &mut rng);
        assert!(t.latency >= c.latency, "walk + proxying adds latency");
    }
}
