//! Baseline DHT lookups the paper compares against (§2, §6, §7).
//!
//! * [`chord`] — vanilla iterative Chord \[34\]: the efficiency baseline of
//!   Table 3 and the anonymity floor of Figs. 5(b)/6.
//! * [`halo`] — Halo \[17\]: redundant knuckle searches (8×4 degree-2 in
//!   §7), the state-of-the-art *secure-only* lookup of Table 3.
//! * [`nisan`] — NISAN \[28\]: iterative lookup fetching whole
//!   fingertables with bound checking; hides the key but not the
//!   initiator, and falls to the range-estimation attack \[38\].
//! * [`torsk`] — Torsk \[20\]: buddy (proxy) lookups found by random walk;
//!   hides the initiator behind the buddy but not the target.
//!
//! Latency is estimated with the *same methodology* the paper uses for
//! its PlanetLab comparison: each scheme's message pattern is replayed
//! against the shared WAN latency model, so the comparison isolates
//! protocol structure (hop counts, redundancy, waiting-for-all) from
//! implementation details.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chord;
pub mod halo;
pub mod nisan;
pub mod torsk;

pub use chord::{chord_lookup, ChordLookup};
pub use halo::{halo_lookup, HaloLookup, HALO_DEGREE, HALO_REDUNDANCY};
pub use nisan::{nisan_lookup, NisanLookup};
pub use torsk::{torsk_lookup, TorskLookup};
