//! # Octopus — a secure and anonymous DHT lookup
//!
//! A from-scratch Rust reproduction of *"Octopus: A Secure and Anonymous
//! DHT Lookup"* (Qiyan Wang, ICDCS 2012): a Chord-based lookup that
//! hides both the initiator and the target of every lookup while
//! actively *identifying and evicting* attacking nodes.
//!
//! This crate is the facade over the workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`id`] | 64-bit Chord ring arithmetic |
//! | [`crypto`] | SHA-256, HMAC, onion encryption, RSA-64 signatures, certificates, Merkle CRL |
//! | [`sim`] | deterministic discrete-event engine + exponential churn |
//! | [`net`] | King-like WAN latency, sharded message world + cross-shard bus, bandwidth accounting |
//! | [`chord`] | fingertables, successor/predecessor stabilization, greedy lookup, bound checking |
//! | [`core`] | the Octopus protocol: anonymous paths, random walks, dummies, surveillance, the CA, the security simulator |
//! | [`baselines`] | Chord, Halo, NISAN, Torsk comparison implementations |
//! | [`anonymity`] | H(I)/H(T) entropy calculators, range-estimation and timing attacks |
//! | [`metrics`] | summaries, CDFs, time series, text tables |
//! | [`spec`] | dependency-free executable reference model (`step`, `check_invariants`) for differential checking |
//! | [`transport`] | the same protocol over real UDP sockets: peer table, frame codec, poll-loop host, `octopus-node` binary |
//!
//! ## Quick start
//!
//! ```
//! use octopus::core::{AttackKind, SecuritySim, SimConfig, OctopusConfig};
//! use octopus::sim::Duration;
//!
//! // a 100-node Octopus network under lookup-bias attack for 60 s
//! let cfg = SimConfig {
//!     n: 100,
//!     duration: Duration::from_secs(60),
//!     octopus: OctopusConfig::for_network(100),
//!     attack: AttackKind::LookupBias,
//!     ..SimConfig::default()
//! };
//! let report = SecuritySim::new(cfg).run();
//! assert_eq!(report.false_positives, 0);
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench/src/bin/`
//! for the binaries that regenerate every table and figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use octopus_anonymity as anonymity;
pub use octopus_baselines as baselines;
pub use octopus_chord as chord;
pub use octopus_core as core;
pub use octopus_crypto as crypto;
pub use octopus_id as id;
pub use octopus_metrics as metrics;
pub use octopus_net as net;
pub use octopus_sim as sim;
pub use octopus_spec as spec;
pub use octopus_transport as transport;
